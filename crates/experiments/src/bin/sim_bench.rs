//! Simulator throughput benchmark: MIPS per workload family.
//!
//! ```text
//! sim_bench [--scale smoke|test|paper] [--out <path>] [--metrics <path>]
//!           [--check <baseline.json>] [--tolerance <pct>]
//! ```
//!
//! For each synthetic workload family the harness generates one trace,
//! converts it once with every improvement enabled, then repeatedly
//! simulates it on the paper's main configuration, reporting millions of
//! retired records per wall-clock second (the `sim.throughput.mips`
//! gauge). The RISC-V E-Trace families (`rv-int`, `rv-stream`,
//! `rv-dispatch`) go through their own frontend — packet-stream
//! reconstruction mapped to CVP records — and then the same convert and
//! simulate phases. Results land in `BENCH_sim.json` (`--out` to
//! redirect).
//!
//! `--check <baseline>` compares against a committed `BENCH_sim.json`
//! instead of only reporting: the run fails (exit 1) if any family's
//! MIPS, or the overall aggregate, regresses more than `--tolerance`
//! percent (default 20) below the baseline — the CI perf-smoke gate.
//! One-off phase timings (generate/convert/simulate CPU seconds) go to
//! the `--metrics` telemetry document as `experiments.phase_seconds.*`;
//! they are host measurements and never appear in the deterministic
//! `experiments --metrics` output.

use std::time::Instant;

use converter::{Converter, ImprovementSet};
use experiments::bench::measure;
use experiments::runner::ExperimentScale;
use sim::{CoreConfig, RunOptions, Simulator};
use telemetry::catalog;
use trace_store::rv_items_to_cvp;
use workloads::{RvTraceSpec, RvWorkloadKind, TraceSpec, WorkloadKind};

/// The benched families: every synthetic workload kind, named as in
/// `WorkloadKind::to_string`.
const FAMILIES: [WorkloadKind; 6] = [
    WorkloadKind::PointerChase,
    WorkloadKind::Streaming,
    WorkloadKind::Crypto,
    WorkloadKind::BranchyInt,
    WorkloadKind::Server,
    WorkloadKind::FpKernel,
];

/// The benched RISC-V families, named as in `RvWorkloadKind::to_string`.
const RV_FAMILIES: [RvWorkloadKind; 3] =
    [RvWorkloadKind::IntLoop, RvWorkloadKind::StreamKernel, RvWorkloadKind::Dispatch];

struct FamilyResult {
    family: String,
    instructions: u64,
    mean_seconds: f64,
    iterations: u32,
    mips: f64,
}

struct PhaseSeconds {
    generate: f64,
    convert: f64,
    simulate: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut scale_name = "paper".to_string();
    let mut scale = ExperimentScale::paper();
    let mut out_path = "BENCH_sim.json".to_string();
    let mut metrics_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance_pct = 20.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale_name = args.next().unwrap_or_else(|| fail("--scale needs a value"));
                scale = match scale_name.as_str() {
                    "smoke" => ExperimentScale::smoke(),
                    "test" => ExperimentScale::test(),
                    "paper" => ExperimentScale::paper(),
                    other => fail(&format!("--scale must be smoke|test|paper, got {other:?}")),
                };
            }
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out needs a path")),
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| fail("--metrics needs a path")));
            }
            "--check" => {
                baseline_path = Some(args.next().unwrap_or_else(|| fail("--check needs a path")));
            }
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t > 0.0 && *t < 100.0)
                    .unwrap_or_else(|| fail("--tolerance needs a percentage in (0, 100)"));
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let core = CoreConfig::iiswc_main();
    let mut results = Vec::new();
    let mut phases = PhaseSeconds { generate: 0.0, convert: 0.0, simulate: 0.0 };
    for kind in FAMILIES {
        let family = kind.to_string();
        let spec =
            TraceSpec::new(format!("bench_{family}"), kind, 0xb1a5).with_length(scale.trace_length);
        let start = Instant::now();
        let cvp = spec.generate();
        phases.generate += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let records = Converter::new(ImprovementSet::all()).convert_all(cvp.iter());
        phases.convert += start.elapsed().as_secs_f64();

        let mut simulator = Simulator::new(core.clone());
        let (mean_seconds, iterations) =
            measure(|| simulator.run_with_options(&records, RunOptions::default()));
        phases.simulate += mean_seconds * f64::from(iterations);
        let instructions = simulator.run_with_options(&records, RunOptions::default()).instructions;
        let mips = instructions as f64 / 1e6 / mean_seconds;
        eprintln!("[sim_bench] {family}: {mips:.2} MIPS ({instructions} records, {iterations} iterations)");
        results.push(FamilyResult { family, instructions, mean_seconds, iterations, mips });
    }
    for kind in RV_FAMILIES {
        let family = kind.to_string();
        let spec = RvTraceSpec::new(format!("bench_{family}"), kind, 0xb1a5)
            .with_length(scale.trace_length);
        let start = Instant::now();
        let (program, items) = spec.generate();
        let cvp = rv_items_to_cvp(&program, &items);
        phases.generate += start.elapsed().as_secs_f64();

        let start = Instant::now();
        let records = Converter::new(ImprovementSet::all()).convert_all(cvp.iter());
        phases.convert += start.elapsed().as_secs_f64();

        let mut simulator = Simulator::new(core.clone());
        let (mean_seconds, iterations) =
            measure(|| simulator.run_with_options(&records, RunOptions::default()));
        phases.simulate += mean_seconds * f64::from(iterations);
        let instructions = simulator.run_with_options(&records, RunOptions::default()).instructions;
        let mips = instructions as f64 / 1e6 / mean_seconds;
        eprintln!("[sim_bench] {family}: {mips:.2} MIPS ({instructions} records, {iterations} iterations)");
        results.push(FamilyResult { family, instructions, mean_seconds, iterations, mips });
    }
    let aggregate = aggregate_mips(&results);
    eprintln!("[sim_bench] aggregate: {aggregate:.2} MIPS");

    let json = to_json(&scale_name, &results, aggregate);
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[sim_bench] wrote {out_path}"),
        Err(e) => fail(&format!("could not write {out_path}: {e}")),
    }
    if let Some(path) = &metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("scale", &scale_name);
        registry.gauge(&catalog::SIM_THROUGHPUT_MIPS, aggregate);
        for r in &results {
            registry.gauge_at(&catalog::SIM_THROUGHPUT_FAMILY_MIPS, &r.family, r.mips);
        }
        registry.gauge_at(&catalog::EXP_PHASE_SECONDS, "generate", phases.generate);
        registry.gauge_at(&catalog::EXP_PHASE_SECONDS, "convert", phases.convert);
        registry.gauge_at(&catalog::EXP_PHASE_SECONDS, "simulate", phases.simulate);
        match std::fs::write(path, registry.to_json()) {
            Ok(()) => eprintln!("[sim_bench] wrote {path}"),
            Err(e) => fail(&format!("could not write {path}: {e}")),
        }
    }
    if let Some(path) = &baseline_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("could not read baseline {path}: {e}")));
        check_against_baseline(&baseline, &results, aggregate, tolerance_pct);
    }
}

/// Record-weighted aggregate throughput: total records per total time of
/// one pass over every family.
fn aggregate_mips(results: &[FamilyResult]) -> f64 {
    let records: u64 = results.iter().map(|r| r.instructions).sum();
    let seconds: f64 = results.iter().map(|r| r.mean_seconds).sum();
    records as f64 / 1e6 / seconds
}

fn to_json(scale: &str, results: &[FamilyResult], aggregate: f64) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"scale\":\"{scale}\",\"results\":["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"family\":\"{}\",\"instructions\":{},\"mean_seconds\":{:.6},\
             \"iterations\":{},\"mips\":{:.3}}}",
            r.family, r.instructions, r.mean_seconds, r.iterations, r.mips
        ));
    }
    out.push_str(&format!("],\"aggregate_mips\":{aggregate:.3}}}\n"));
    out
}

/// Compares this run against a committed `BENCH_sim.json`, exiting
/// non-zero on any regression beyond `tolerance_pct` percent.
fn check_against_baseline(
    baseline: &str,
    results: &[FamilyResult],
    aggregate: f64,
    tolerance_pct: f64,
) {
    let floor = 1.0 - tolerance_pct / 100.0;
    let mut failures = Vec::new();
    for r in results {
        let Some(base) = json_mips_for(baseline, &r.family) else {
            eprintln!("[sim_bench] baseline has no entry for {} — skipping", r.family);
            continue;
        };
        if r.mips < base * floor {
            failures.push(format!(
                "{}: {:.2} MIPS vs baseline {:.2} ({:+.1}%)",
                r.family,
                r.mips,
                base,
                (r.mips / base - 1.0) * 100.0
            ));
        }
    }
    if let Some(base) = json_f64_field(baseline, "\"aggregate_mips\":") {
        if aggregate < base * floor {
            failures.push(format!(
                "aggregate: {aggregate:.2} MIPS vs baseline {base:.2} ({:+.1}%)",
                (aggregate / base - 1.0) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        eprintln!("[sim_bench] throughput within {tolerance_pct}% of baseline");
    } else {
        eprintln!("error: MIPS regression beyond {tolerance_pct}% tolerance:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Extracts the `mips` value of one family entry from a `BENCH_sim.json`
/// document (the fixed format `to_json` writes — not a general parser).
fn json_mips_for(doc: &str, family: &str) -> Option<f64> {
    let marker = format!("\"family\":\"{family}\"");
    let entry = &doc[doc.find(&marker)? + marker.len()..];
    let entry = &entry[..entry.find('}')?];
    json_f64_field(entry, "\"mips\":")
}

/// Reads the number following `key` in `doc`.
fn json_f64_field(doc: &str, key: &str) -> Option<f64> {
    let rest = &doc[doc.find(key)? + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: sim_bench [--scale smoke|test|paper] [--out <path>] [--metrics <path>] \
         [--check <baseline.json>] [--tolerance <pct>]"
    );
    std::process::exit(2);
}
