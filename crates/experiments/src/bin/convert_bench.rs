//! Trace-store I/O benchmark: encode/decode throughput and compression
//! ratio per workload family.
//!
//! ```text
//! convert_bench [--scale smoke|test|paper] [--out <path>] [--metrics <path>]
//!               [--check <baseline.json>] [--tolerance <pct>]
//! ```
//!
//! For each synthetic workload family the harness generates one CVP-1
//! trace and its All_imps ChampSim conversion, then measures the block
//! store's in-memory encode and decode speed for both stream kinds
//! (`.cvpz` and `.champsimz`), in raw megabytes per second, along with
//! the achieved compression ratio. The RISC-V families (`rv-int`,
//! `rv-stream`, `rv-dispatch`) bench the `.etrace` packet stream the
//! same way — raw volume is the flat per-instruction record size the
//! packets replace, and the compression ratio must clear the format's
//! 3x floor — plus the `.champsimz` store of their converted records.
//! Results land in `BENCH_io.json` (`--out` to redirect).
//!
//! `--check <baseline>` compares against a committed `BENCH_io.json`:
//! the run fails (exit 1) if any family's encode or decode MB/s
//! regresses more than `--tolerance` percent (default 25) below the
//! baseline, or its compression ratio drops below the baseline by the
//! same margin — the CI perf-smoke gate for the I/O layer. `--metrics`
//! writes the aggregate `store.*` volume counters of the benched
//! encodes as one telemetry document.

use std::io::Cursor;
use std::time::Instant;

use champsim_trace::{ChampsimRecord, RECORD_BYTES};
use converter::{Converter, ImprovementSet};
use cvp_trace::CvpInstruction;
use etrace::{EtraceReader, EtraceWriter, Program, TraceItem};
use experiments::bench::measure;
use experiments::runner::ExperimentScale;
use telemetry::catalog;
use trace_store::{
    rv_items_to_cvp, ChampsimzReader, ChampsimzWriter, CvpzReader, CvpzWriter, StoreStats,
};
use workloads::{RvTraceSpec, RvWorkloadKind, TraceSpec, WorkloadKind};

/// The benched families, named as in `WorkloadKind::to_string`.
const FAMILIES: [WorkloadKind; 6] = [
    WorkloadKind::PointerChase,
    WorkloadKind::Streaming,
    WorkloadKind::Crypto,
    WorkloadKind::BranchyInt,
    WorkloadKind::Server,
    WorkloadKind::FpKernel,
];

/// The benched RISC-V families, named as in `RvWorkloadKind::to_string`.
const RV_FAMILIES: [RvWorkloadKind; 3] =
    [RvWorkloadKind::IntLoop, RvWorkloadKind::StreamKernel, RvWorkloadKind::Dispatch];

/// The `.etrace` format's advertised compression floor over flat
/// per-instruction records; a bench run under it is a hard failure.
const ETRACE_RATIO_FLOOR: f64 = 3.0;

/// One stream kind's measurements on one family.
struct StreamResult {
    raw_bytes: u64,
    encode_mbps: f64,
    decode_mbps: f64,
    ratio: f64,
}

/// One family's two benched streams, each tagged with its JSON key
/// (`cvpz`/`champsimz` for the ARM families, `etrace`/`champsimz` for
/// the RISC-V ones).
struct FamilyResult {
    family: String,
    streams: [(&'static str, StreamResult); 2],
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut scale_name = "paper".to_string();
    let mut scale = ExperimentScale::paper();
    let mut out_path = "BENCH_io.json".to_string();
    let mut metrics_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale_name = args.next().unwrap_or_else(|| fail("--scale needs a value"));
                scale = match scale_name.as_str() {
                    "smoke" => ExperimentScale::smoke(),
                    "test" => ExperimentScale::test(),
                    "paper" => ExperimentScale::paper(),
                    other => fail(&format!("--scale must be smoke|test|paper, got {other:?}")),
                };
            }
            "--out" => out_path = args.next().unwrap_or_else(|| fail("--out needs a path")),
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| fail("--metrics needs a path")));
            }
            "--check" => {
                baseline_path = Some(args.next().unwrap_or_else(|| fail("--check needs a path")));
            }
            "--tolerance" => {
                tolerance_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| *t > 0.0 && *t < 100.0)
                    .unwrap_or_else(|| fail("--tolerance needs a percentage in (0, 100)"));
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let mut results = Vec::new();
    let mut totals = StoreStats::default();
    for kind in FAMILIES {
        let family = kind.to_string();
        let spec =
            TraceSpec::new(format!("bench_{family}"), kind, 0xb1a5).with_length(scale.trace_length);
        let start = Instant::now();
        let cvp = spec.generate();
        let records = Converter::new(ImprovementSet::all()).convert_all(cvp.iter());
        let prep = start.elapsed().as_secs_f64();

        let cvpz = bench_cvpz(&cvp, &mut totals);
        let champsimz = bench_champsimz(&records, &mut totals);
        report_family(&family, &[("cvpz", &cvpz), ("champsimz", &champsimz)], prep);
        results.push(FamilyResult { family, streams: [("cvpz", cvpz), ("champsimz", champsimz)] });
    }
    for kind in RV_FAMILIES {
        let family = kind.to_string();
        let spec = RvTraceSpec::new(format!("bench_{family}"), kind, 0xb1a5)
            .with_length(scale.trace_length);
        let start = Instant::now();
        let (program, items) = spec.generate();
        let records = Converter::new(ImprovementSet::all())
            .convert_all(rv_items_to_cvp(&program, &items).iter());
        let prep = start.elapsed().as_secs_f64();

        let etrace = bench_etrace(&program, &items);
        if etrace.ratio <= ETRACE_RATIO_FLOOR {
            eprintln!(
                "error: {family} .etrace compression {:.2}x is under the {ETRACE_RATIO_FLOOR}x floor",
                etrace.ratio
            );
            std::process::exit(1);
        }
        let champsimz = bench_champsimz(&records, &mut totals);
        report_family(&family, &[("etrace", &etrace), ("champsimz", &champsimz)], prep);
        results
            .push(FamilyResult { family, streams: [("etrace", etrace), ("champsimz", champsimz)] });
    }

    let json = to_json(&scale_name, &results);
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[convert_bench] wrote {out_path}"),
        Err(e) => fail(&format!("could not write {out_path}: {e}")),
    }
    if let Some(path) = &metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("scale", &scale_name);
        registry.counter(&catalog::STORE_BLOCKS_WRITTEN, totals.blocks_written);
        registry.counter(&catalog::STORE_BYTES_RAW, totals.bytes_raw);
        registry.counter(&catalog::STORE_BYTES_COMPRESSED, totals.bytes_compressed);
        registry.gauge(&catalog::STORE_COMPRESSION_RATIO, totals.compression_ratio());
        match std::fs::write(path, registry.to_json()) {
            Ok(()) => eprintln!("[convert_bench] wrote {path}"),
            Err(e) => fail(&format!("could not write {path}: {e}")),
        }
    }
    if let Some(path) = &baseline_path {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("could not read baseline {path}: {e}")));
        check_against_baseline(&baseline, &results, tolerance_pct);
    }
}

/// Measures the `.cvpz` store on one trace: in-memory encode, decode of
/// the produced bytes, raw-volume throughput for both.
fn bench_cvpz(cvp: &[CvpInstruction], totals: &mut StoreStats) -> StreamResult {
    let encode = || {
        let mut w = CvpzWriter::new(Vec::with_capacity(1 << 20)).expect("vec write");
        for insn in cvp {
            w.write(insn).expect("vec write");
        }
        w.finish().expect("vec write")
    };
    let (encode_seconds, _) = measure(&encode);
    let (encoded, stats) = encode();
    totals.blocks_written += stats.blocks_written;
    totals.bytes_raw += stats.bytes_raw;
    totals.bytes_compressed += stats.bytes_compressed;

    let decode = || {
        let mut n = 0u64;
        let mut r = CvpzReader::new(Cursor::new(&encoded)).expect("valid store");
        while r.read().expect("valid store").is_some() {
            n += 1;
        }
        n
    };
    let (decode_seconds, _) = measure(decode);
    StreamResult {
        raw_bytes: stats.bytes_raw,
        encode_mbps: mbps(stats.bytes_raw, encode_seconds),
        decode_mbps: mbps(stats.bytes_raw, decode_seconds),
        ratio: stats.compression_ratio(),
    }
}

/// Measures the `.champsimz` store on one record buffer.
fn bench_champsimz(records: &[ChampsimRecord], totals: &mut StoreStats) -> StreamResult {
    let encode = || {
        let mut w = ChampsimzWriter::new(Vec::with_capacity(1 << 20)).expect("vec write");
        for rec in records {
            w.write(rec).expect("vec write");
        }
        w.finish().expect("vec write")
    };
    let (encode_seconds, _) = measure(&encode);
    let (encoded, stats) = encode();
    totals.blocks_written += stats.blocks_written;
    totals.bytes_raw += stats.bytes_raw;
    totals.bytes_compressed += stats.bytes_compressed;

    let raw_bytes = (records.len() * RECORD_BYTES) as u64;
    let decode = || {
        let mut n = 0u64;
        let mut r = ChampsimzReader::new(Cursor::new(&encoded)).expect("valid store");
        while r.read().expect("valid store").is_some() {
            n += 1;
        }
        n
    };
    let (decode_seconds, _) = measure(decode);
    StreamResult {
        raw_bytes,
        encode_mbps: mbps(raw_bytes, encode_seconds),
        decode_mbps: mbps(raw_bytes, decode_seconds),
        ratio: stats.compression_ratio(),
    }
}

/// Measures the `.etrace` packet stream on one generated pair: encode
/// against the flat per-instruction volume the packets replace, decode
/// (reconstruction) of the produced bytes.
fn bench_etrace(program: &Program, items: &[TraceItem]) -> StreamResult {
    let encode = || {
        let mut w = EtraceWriter::new(Vec::with_capacity(1 << 20), program).expect("vec write");
        for item in items {
            w.write(item).expect("vec write");
        }
        w.finish().expect("vec write")
    };
    let (encode_seconds, _) = measure(&encode);
    let (encoded, stats) = encode();

    let decode = || {
        let mut n = 0u64;
        let mut r = EtraceReader::new(Cursor::new(&encoded)).expect("valid stream");
        while r.read().expect("valid stream").is_some() {
            n += 1;
        }
        n
    };
    let (decode_seconds, _) = measure(decode);
    StreamResult {
        raw_bytes: stats.flat_bytes,
        encode_mbps: mbps(stats.flat_bytes, encode_seconds),
        decode_mbps: mbps(stats.flat_bytes, decode_seconds),
        ratio: stats.compression_ratio(),
    }
}

fn report_family(family: &str, streams: &[(&str, &StreamResult)], prep: f64) {
    let mut line = format!("[convert_bench] {family}:");
    for (i, (kind, s)) in streams.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            " {kind} {:.1}/{:.1} MB/s enc/dec ({:.2}x)",
            s.encode_mbps, s.decode_mbps, s.ratio
        ));
    }
    eprintln!("{line} [prep {prep:.2} s]");
}

fn mbps(raw_bytes: u64, seconds: f64) -> f64 {
    raw_bytes as f64 / 1e6 / seconds
}

fn stream_json(s: &StreamResult) -> String {
    format!(
        "{{\"raw_bytes\":{},\"encode_mbps\":{:.3},\"decode_mbps\":{:.3},\"ratio\":{:.3}}}",
        s.raw_bytes, s.encode_mbps, s.decode_mbps, s.ratio
    )
}

fn to_json(scale: &str, results: &[FamilyResult]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"scale\":\"{scale}\",\"results\":["));
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"family\":\"{}\",\"{}\":{},\"{}\":{}}}",
            r.family,
            r.streams[0].0,
            stream_json(&r.streams[0].1),
            r.streams[1].0,
            stream_json(&r.streams[1].1)
        ));
    }
    out.push_str("]}\n");
    out
}

/// Compares this run against a committed `BENCH_io.json`, exiting
/// non-zero on any regression beyond `tolerance_pct` percent.
fn check_against_baseline(baseline: &str, results: &[FamilyResult], tolerance_pct: f64) {
    let floor = 1.0 - tolerance_pct / 100.0;
    let mut failures = Vec::new();
    for r in results {
        let Some(entry) = family_entry(baseline, &r.family) else {
            eprintln!("[convert_bench] baseline has no entry for {} — skipping", r.family);
            continue;
        };
        for (kind, stream) in r.streams.iter().map(|(k, s)| (*k, s)) {
            let Some(base) = stream_entry(entry, kind) else { continue };
            for (field, value) in [
                ("encode_mbps", stream.encode_mbps),
                ("decode_mbps", stream.decode_mbps),
                ("ratio", stream.ratio),
            ] {
                let Some(base_value) = json_f64_field(base, &format!("\"{field}\":")) else {
                    continue;
                };
                if value < base_value * floor {
                    failures.push(format!(
                        "{}/{kind} {field}: {value:.2} vs baseline {base_value:.2} ({:+.1}%)",
                        r.family,
                        (value / base_value - 1.0) * 100.0
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        eprintln!("[convert_bench] I/O throughput within {tolerance_pct}% of baseline");
    } else {
        eprintln!("error: store I/O regression beyond {tolerance_pct}% tolerance:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Slices one family's object out of a `BENCH_io.json` document (the
/// fixed format `to_json` writes — not a general parser).
fn family_entry<'a>(doc: &'a str, family: &str) -> Option<&'a str> {
    let marker = format!("\"family\":\"{family}\"");
    let entry = &doc[doc.find(&marker)? + marker.len()..];
    // Ends at the family-object close: the second `}}` closes champsimz
    // and the family entry together.
    Some(&entry[..entry.find("}}")? + 2])
}

/// Slices one stream kind's object out of a family entry.
fn stream_entry<'a>(entry: &'a str, kind: &str) -> Option<&'a str> {
    let marker = format!("\"{kind}\":{{");
    let body = &entry[entry.find(&marker)? + marker.len()..];
    Some(&body[..body.find('}')?])
}

/// Reads the number following `key` in `doc`.
fn json_f64_field(doc: &str, key: &str) -> Option<f64> {
    let rest = &doc[doc.find(key)? + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: convert_bench [--scale smoke|test|paper] [--out <path>] [--metrics <path>] \
         [--check <baseline.json>] [--tolerance <pct>]"
    );
    std::process::exit(2);
}
