//! Metrics export for the experiment harness (`experiments --metrics`).
//!
//! Turns the computed [`Grid`] and [`Table3`] results into one
//! deterministic [`telemetry::Registry`] document: per-configuration
//! suite aggregates under `experiments.grid.{config}.*`, prefetcher
//! speedups under `experiments.table3.{prefetcher}.*` /
//! `experiments.table4.{prefetcher}.*`, and a per-improvement IPC-delta
//! **attribution table** — which counters moved when each improvement
//! toggled — appended as an `"attribution"` section.
//!
//! Everything here is a pure fold over outcome vectors in fixed index
//! order, so the emitted JSON is byte-identical across worker-thread
//! counts (the `--threads 1` vs `--threads 8` determinism guarantee).

use telemetry::{catalog, Registry};

use crate::figures::Grid;
use crate::runner::{geomean, TraceOutcome};
use crate::tables::Table3;

/// Per-configuration counter sums used by both the registry export and
/// the attribution table.
#[derive(Debug, Clone, Copy, Default)]
struct ConfigSums {
    instructions: u64,
    cycles: u64,
    branch_mispredicts: u64,
    direction_mispredicts: u64,
    target_mispredicts: u64,
    mispredict_resolve_cycles: u64,
    l1i_misses: u64,
    l1d_misses: u64,
    l2_misses: u64,
    llc_misses: u64,
    split_records: u64,
}

fn sums(outcomes: &[TraceOutcome]) -> ConfigSums {
    let mut s = ConfigSums::default();
    for o in outcomes {
        s.instructions += o.report.instructions;
        s.cycles += o.report.cycles;
        s.branch_mispredicts += o.report.branches.total_mispredicts();
        s.direction_mispredicts += o.report.branches.direction_mispredicts;
        s.target_mispredicts += o.report.branches.target_mispredicts;
        s.mispredict_resolve_cycles += o.report.branches.mispredict_resolve_cycles;
        s.l1i_misses += o.report.l1i.demand_misses;
        s.l1d_misses += o.report.l1d.demand_misses;
        s.l2_misses += o.report.l2.demand_misses;
        s.llc_misses += o.report.llc.demand_misses;
        s.split_records +=
            o.conversion.output_records.saturating_sub(o.conversion.input_instructions);
    }
    s
}

fn geomean_ipc(outcomes: &[TraceOutcome]) -> f64 {
    geomean(&outcomes.iter().map(|o| o.report.ipc()).collect::<Vec<_>>())
}

/// Registers the grid's per-configuration aggregates under
/// `experiments.grid.*` (the `No_imp` baseline plus every improvement
/// configuration, in grid order).
pub fn export_grid(grid: &Grid, registry: &mut Registry) {
    registry.counter(&catalog::EXP_GRID_TRACES, grid.baseline.len() as u64);
    registry.counter(&catalog::EXP_GRID_CONFIGS, grid.runs.len() as u64 + 1);
    let base_geo = geomean_ipc(&grid.baseline);
    let mut export_config = |label: &str, outcomes: &[TraceOutcome]| {
        let geo = geomean_ipc(outcomes);
        let s = sums(outcomes);
        registry.gauge_at(&catalog::EXP_GRID_GEOMEAN_IPC, label, geo);
        registry.gauge_at(&catalog::EXP_GRID_IPC_DELTA, label, (geo / base_geo - 1.0) * 100.0);
        registry.counter_at(&catalog::EXP_GRID_INSTRUCTIONS, label, s.instructions);
        registry.counter_at(&catalog::EXP_GRID_CYCLES, label, s.cycles);
        registry.counter_at(&catalog::EXP_GRID_BRANCH_MISPREDICTS, label, s.branch_mispredicts);
        registry.counter_at(
            &catalog::EXP_GRID_DIRECTION_MISPREDICTS,
            label,
            s.direction_mispredicts,
        );
        registry.counter_at(&catalog::EXP_GRID_TARGET_MISPREDICTS, label, s.target_mispredicts);
        registry.counter_at(
            &catalog::EXP_GRID_MISPREDICT_RESOLVE_CYCLES,
            label,
            s.mispredict_resolve_cycles,
        );
        registry.counter_at(&catalog::EXP_GRID_L1I_MISSES, label, s.l1i_misses);
        registry.counter_at(&catalog::EXP_GRID_L1D_MISSES, label, s.l1d_misses);
        registry.counter_at(&catalog::EXP_GRID_L2_MISSES, label, s.l2_misses);
        registry.counter_at(&catalog::EXP_GRID_LLC_MISSES, label, s.llc_misses);
        registry.counter_at(&catalog::EXP_GRID_SPLIT_RECORDS, label, s.split_records);
    };
    export_config("No_imp", &grid.baseline);
    for (label, _, outcomes) in &grid.runs {
        export_config(label, outcomes);
    }
}

/// Registers one ranking's geomean speedups per prefetcher. `table` is
/// 3 for the IPC-1 core study, 4 for the decoupled-front-end extension.
///
/// # Panics
///
/// Panics if `table` is neither 3 nor 4.
pub fn export_table3(t: &Table3, table: u8, registry: &mut Registry) {
    let (competition, fixed) = match table {
        3 => (&catalog::EXP_TABLE3_SPEEDUP_COMPETITION, &catalog::EXP_TABLE3_SPEEDUP_FIXED),
        4 => (&catalog::EXP_TABLE4_SPEEDUP_COMPETITION, &catalog::EXP_TABLE4_SPEEDUP_FIXED),
        other => panic!("no table {other} in the catalog"),
    };
    for e in &t.competition {
        registry.gauge_at(competition, &e.prefetcher, e.speedup);
    }
    for e in &t.fixed {
        registry.gauge_at(fixed, &e.prefetcher, e.speedup);
    }
}

/// One row of the per-improvement IPC-delta attribution table: the
/// geomean-IPC effect of one configuration, alongside the counters that
/// moved versus the `No_imp` baseline.
///
/// The paper's Figure 1 story reads straight off these columns: the
/// memory improvements move cache/record counters, while `flag-reg` and
/// `branch-regs` leave miss counts untouched and instead inflate
/// [`mispredict_resolve_cycle_delta`](Self::mispredict_resolve_cycle_delta)
/// — mispredicted branches resolving later.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Configuration label (grid order).
    pub config: String,
    /// Geomean-IPC variation versus `No_imp`, percent.
    pub ipc_delta_pct: f64,
    /// Input instructions the configuration's improvements rewrote,
    /// summed across the suite.
    pub rewrites: u64,
    /// Core-cycle delta versus baseline (suite sum).
    pub cycle_delta: i64,
    /// Branch-misprediction-count delta (direction or target).
    pub branch_mispredict_delta: i64,
    /// Direction-only misprediction delta.
    pub direction_mispredict_delta: i64,
    /// Target-only misprediction delta.
    pub target_mispredict_delta: i64,
    /// Delta of dispatch-to-resolve cycles of mispredicted branches —
    /// the exposed misprediction penalty.
    pub mispredict_resolve_cycle_delta: i64,
    /// L1I demand-miss delta.
    pub l1i_miss_delta: i64,
    /// L1D demand-miss delta.
    pub l1d_miss_delta: i64,
    /// LLC demand-miss delta.
    pub llc_miss_delta: i64,
    /// Delta of records emitted beyond the input instruction count
    /// (base-update splitting).
    pub split_record_delta: i64,
}

fn delta(a: u64, b: u64) -> i64 {
    a as i64 - b as i64
}

/// Computes the attribution table: one row per grid configuration, each
/// comparing that configuration's suite-summed counters to `No_imp`.
pub fn attribution(grid: &Grid) -> Vec<AttributionRow> {
    let base_geo = geomean_ipc(&grid.baseline);
    let base = sums(&grid.baseline);
    grid.runs
        .iter()
        .map(|(label, imps, outcomes)| {
            let s = sums(outcomes);
            let rewrites = outcomes
                .iter()
                .map(|o| imps.iter().map(|i| o.conversion.rewrites(i)).sum::<u64>())
                .sum();
            AttributionRow {
                config: label.clone(),
                ipc_delta_pct: (geomean_ipc(outcomes) / base_geo - 1.0) * 100.0,
                rewrites,
                cycle_delta: delta(s.cycles, base.cycles),
                branch_mispredict_delta: delta(s.branch_mispredicts, base.branch_mispredicts),
                direction_mispredict_delta: delta(
                    s.direction_mispredicts,
                    base.direction_mispredicts,
                ),
                target_mispredict_delta: delta(s.target_mispredicts, base.target_mispredicts),
                mispredict_resolve_cycle_delta: delta(
                    s.mispredict_resolve_cycles,
                    base.mispredict_resolve_cycles,
                ),
                l1i_miss_delta: delta(s.l1i_misses, base.l1i_misses),
                l1d_miss_delta: delta(s.l1d_misses, base.l1d_misses),
                llc_miss_delta: delta(s.llc_misses, base.llc_misses),
                split_record_delta: delta(s.split_records, base.split_records),
            }
        })
        .collect()
}

/// Serializes the attribution rows as a JSON array (the document's
/// `"attribution"` section), keys in a fixed order.
pub fn attribution_json(rows: &[AttributionRow]) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"config\":\"{}\",\"ipc_delta_pct\":{:.6},\"rewrites\":{},\
                 \"cycle_delta\":{},\"branch_mispredict_delta\":{},\
                 \"direction_mispredict_delta\":{},\"target_mispredict_delta\":{},\
                 \"mispredict_resolve_cycle_delta\":{},\"l1i_miss_delta\":{},\
                 \"l1d_miss_delta\":{},\"llc_miss_delta\":{},\"split_record_delta\":{}}}",
                r.config,
                r.ipc_delta_pct,
                r.rewrites,
                r.cycle_delta,
                r.branch_mispredict_delta,
                r.direction_mispredict_delta,
                r.target_mispredict_delta,
                r.mispredict_resolve_cycle_delta,
                r.l1i_miss_delta,
                r.l1d_miss_delta,
                r.llc_miss_delta,
                r.split_record_delta,
            )
        })
        .collect();
    format!("[{}]", body.join(","))
}

/// Renders the attribution table as text (printed with `--stats` when
/// the grid was computed).
pub fn render_attribution(rows: &[AttributionRow]) -> String {
    let mut out =
        String::from("Attribution: which counters moved per improvement configuration vs No_imp\n");
    out.push_str(
        "  config             IPC%   rewrites  mpred-penalty-cyc      mispred   l1i-miss \
         \x20 l1d-miss    splits\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:<14} {:+7.2}% {:>10} {:>18} {:>12} {:>10} {:>10} {:>9}\n",
            r.config,
            r.ipc_delta_pct,
            r.rewrites,
            r.mispredict_resolve_cycle_delta,
            r.branch_mispredict_delta,
            r.l1i_miss_delta,
            r.l1d_miss_delta,
            r.split_record_delta,
        ));
    }
    out
}

/// The full metrics document for one computed grid: the registry export
/// plus the attribution section. The `experiments` binary extends this
/// with table 3/4 speedups when those are selected.
pub fn grid_document(grid: &Grid) -> String {
    let mut registry = Registry::new();
    export_grid(grid, &mut registry);
    let rows = attribution(grid);
    registry.to_json_with_sections(&[("attribution", attribution_json(&rows))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Grid;
    use crate::runner::{set_threads, ExperimentScale, OVERRIDE_LOCK};
    use sim::CoreConfig;
    use std::sync::PoisonError;
    use workloads::cvp1_public_suite;

    fn small_grid(threads: usize) -> Grid {
        let specs = &cvp1_public_suite()[..4];
        set_threads(threads);
        let (grid, _) =
            Grid::compute_on_specs(specs, &CoreConfig::test_small(), ExperimentScale::smoke());
        set_threads(0);
        grid
    }

    #[test]
    fn metrics_json_is_byte_identical_across_thread_counts() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let serial = grid_document(&small_grid(1));
        let parallel = grid_document(&small_grid(8));
        assert_eq!(serial, parallel, "metrics must not depend on the schedule");
        assert!(serial.starts_with("{\"schema\":\"trace-rebase-metrics/v1\""));
        assert!(serial.contains("\"experiments.grid.No_imp.geomean_ipc\""), "{serial}");
        assert!(serial.contains(",\"attribution\":[{"), "{serial}");
    }

    #[test]
    fn flag_reg_attribution_moves_branch_penalty_not_caches() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let grid = small_grid(0);
        let rows = attribution(&grid);
        let flag = rows.iter().find(|r| r.config == "flag-reg").expect("flag-reg row");
        assert!(flag.rewrites > 0, "flag-reg must rewrite ALU destinations");
        assert!(
            flag.mispredict_resolve_cycle_delta > 0,
            "flag dependencies must delay mispredicted-branch resolution: {flag:?}"
        );
        assert_eq!(flag.l1i_miss_delta, 0, "flag-reg does not touch the caches: {flag:?}");
        assert_eq!(flag.l1d_miss_delta, 0, "flag-reg does not touch the caches: {flag:?}");
        assert_eq!(flag.llc_miss_delta, 0, "flag-reg does not touch the caches: {flag:?}");
        assert_eq!(flag.split_record_delta, 0, "flag-reg does not split records: {flag:?}");

        let base_update = rows.iter().find(|r| r.config == "base-update").expect("row");
        assert!(base_update.split_record_delta > 0, "base-update splits records");
    }

    #[test]
    fn grid_export_registers_every_configuration() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let grid = small_grid(0);
        let mut registry = Registry::new();
        export_grid(&grid, &mut registry);
        assert_eq!(registry.counter_value("experiments.grid.traces"), 4);
        assert_eq!(registry.counter_value("experiments.grid.configs"), 10);
        for config in ["No_imp", "flag-reg", "All_imps"] {
            assert!(
                registry.get(&format!("experiments.grid.{config}.geomean_ipc")).is_some(),
                "missing {config}"
            );
        }
        let text = render_attribution(&attribution(&grid));
        assert!(text.contains("flag-reg"), "{text}");
    }
}
