//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment follows the paper's §4 methodology on the synthetic
//! suites:
//!
//! * **Figures 1–5** run the 135-trace CVP-1 public suite through the
//!   converter at each improvement setting and simulate with the
//!   [`sim::CoreConfig::iiswc_main`] core, no warm-up, run to the end.
//! * **Table 2** characterizes the 50 IPC-1 traces with all fixes.
//! * **Table 3** re-ranks the eight IPC-1 instruction prefetchers on the
//!   competition-style traces (`No_imp`) versus the fixed traces (all
//!   improvements except `mem-footprint`, per the paper's footnote 4) on
//!   the [`sim::CoreConfig::ipc1`] core with warm-up.
//!
//! The [`runner`] module holds the shared conversion+simulation
//! plumbing (parallelized across traces with scoped threads); the
//! figure/table modules each expose a `compute` function returning
//! plain-data rows plus a `render` helper producing the textual output
//! the artifact scripts would print.
//!
//! # Data flow
//!
//! ```text
//!   workloads suite ──► runner (convert + simulate, work-stealing)
//!                          │
//!            TraceOutcome grid (index-ordered, schedule-independent)
//!                │                │                   │
//!                ▼                ▼                   ▼
//!          figures/tables   metrics::export_*   metrics::attribution
//!            (text, csv)         │                   │
//!                                ▼                   ▼
//!                     one telemetry JSON document (--metrics)
//! ```

pub mod bench;
pub mod cache;
pub mod csv;
pub mod figures;
pub mod metrics;
pub mod runner;
pub mod tables;

pub use cache::{ArtifactCache, CacheCounters, ConvertedTrace};
pub use runner::{simulate_conversion, ExperimentScale, TraceOutcome};

#[cfg(test)]
mod shape_tests;
