//! End-to-end "shape" tests: the qualitative results of every paper
//! experiment must hold at reduced scale. These are the repository's
//! strongest regression net: a change to the converter, simulator, or
//! workloads that flips a paper conclusion fails here.

use converter::ImprovementSet;
use sim::CoreConfig;
use workloads::{cvp1_public_suite, TraceSpec};

use crate::figures::{figure1, figure3, figure4, figure5, Grid};
use crate::runner::{geomean, parallel_map, simulate_conversion, ExperimentScale};

const SCALE: ExperimentScale = ExperimentScale { trace_length: 20_000, warmup: 0 };

/// A reduced public suite: every fourth trace, preserving category mix.
fn mini_suite() -> Vec<TraceSpec> {
    cvp1_public_suite().into_iter().step_by(4).collect()
}

fn mini_grid() -> Grid {
    let specs = mini_suite();
    let core = CoreConfig::iiswc_main();
    let baseline =
        parallel_map(&specs, |s| simulate_conversion(s, ImprovementSet::none(), &core, SCALE));
    let runs = crate::figures::figure_configurations()
        .into_iter()
        .map(|(label, imps)| {
            let outcomes = parallel_map(&specs, |s| simulate_conversion(s, imps, &core, SCALE));
            (label, imps, outcomes)
        })
        .collect();
    Grid { baseline, runs }
}

#[test]
fn figure1_signs_match_the_paper() {
    let grid = mini_grid();
    let rows = figure1(&grid);
    let get = |label: &str| {
        rows.iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("missing {label}"))
            .geomean_ipc_variation_pct
    };
    // Memory improvements help or are neutral; base-update dominates.
    assert!(get("base-update") > 0.5, "base-update must speed up: {}", get("base-update"));
    assert!(get("mem-footprint").abs() < 1.0, "mem-footprint ~ neutral: {}", get("mem-footprint"));
    assert!(get("mem-regs").abs() < 3.0, "mem-regs ~ neutral: {}", get("mem-regs"));
    assert!(get("Memory_imps") > 0.0);
    // Branch improvements: flag-reg and branch-regs slow down; call-stack
    // helps; the branch group nets negative.
    assert!(get("flag-reg") < -1.0, "flag-reg must slow down: {}", get("flag-reg"));
    assert!(get("branch-regs") < -0.5, "branch-regs must slow down: {}", get("branch-regs"));
    assert!(get("call-stack") > 0.0, "call-stack must help: {}", get("call-stack"));
    assert!(get("Branch_imps") < get("flag-reg").max(get("branch-regs")));
    // Everything together nets negative (the paper's -3.5%).
    assert!(get("All_imps") < 0.0, "All_imps nets negative: {}", get("All_imps"));
}

#[test]
fn figure3_slowdown_grows_with_branch_mpki() {
    let grid = mini_grid();
    let rows = figure3(&grid);
    // Correlation check: mean slowdown in the top MPKI tercile must
    // exceed the bottom tercile for both improvements.
    let third = rows.len() / 3;
    let mean = |rs: &[crate::figures::Fig3Row], f: fn(&crate::figures::Fig3Row) -> f64| {
        rs.iter().map(f).sum::<f64>() / rs.len() as f64
    };
    let low = &rows[..third];
    let high = &rows[rows.len() - third..];
    assert!(
        mean(high, |r| r.slowdown_flag_reg_pct) > mean(low, |r| r.slowdown_flag_reg_pct),
        "flag-reg slowdown must grow with branch MPKI"
    );
    assert!(
        mean(high, |r| r.slowdown_branch_regs_pct) > mean(low, |r| r.slowdown_branch_regs_pct),
        "branch-regs slowdown must grow with branch MPKI"
    );
}

#[test]
fn figure4_speedup_grows_with_base_update_fraction() {
    let grid = mini_grid();
    let rows = figure4(&grid);
    let third = rows.len() / 3;
    let low: f64 = rows[..third].iter().map(|r| r.speedup_pct).sum::<f64>() / third as f64;
    let high: f64 =
        rows[rows.len() - third..].iter().map(|r| r.speedup_pct).sum::<f64>() / third as f64;
    assert!(
        high > low,
        "base-update speedup must grow with the base-update load fraction: {low} vs {high}"
    );
    assert!(high > 1.0, "base-update-heavy traces must gain noticeably: {high}");
}

#[test]
fn figure5_call_stack_collapses_return_mpki() {
    let grid = mini_grid();
    let rows = figure5(&grid);
    // The affected subset: an order-of-magnitude return-MPKI reduction
    // and a speedup (paper: +3% to +7%).
    let affected: Vec<_> = rows.iter().filter(|r| r.ras_mpki_original > 1.0).collect();
    assert!(!affected.is_empty(), "some traces must suffer the call-stack bug");
    for r in &affected {
        assert!(
            r.ras_mpki_improved < r.ras_mpki_original / 5.0,
            "{}: return MPKI must collapse: {} -> {}",
            r.trace,
            r.ras_mpki_original,
            r.ras_mpki_improved
        );
        assert!(r.speedup_pct > -1.0, "{}: fix must not slow down: {}", r.trace, r.speedup_pct);
    }
    let mean_speedup: f64 =
        affected.iter().map(|r| r.speedup_pct).sum::<f64>() / affected.len() as f64;
    assert!(mean_speedup > 0.0, "the affected subset must speed up on average: {mean_speedup}");
    // Unaffected traces are untouched.
    let unaffected: Vec<_> = rows.iter().filter(|r| r.ras_mpki_original < 0.01).collect();
    for r in unaffected {
        assert!(r.speedup_pct.abs() < 1.0, "{}: no change expected", r.trace);
    }
}

/// The Table 3 mechanism at reduced scale: on the IPC-1 core, every
/// contest prefetcher must beat no-prefetch on the fixed traces, and
/// the speedups must be larger on fixed traces than on competition
/// traces (the paper's first observation).
#[test]
fn table3_speedups_grow_on_fixed_traces() {
    let specs: Vec<TraceSpec> = workloads::ipc1_suite().into_iter().step_by(7).collect();
    let core = CoreConfig::ipc1();
    let scale = ExperimentScale { trace_length: 30_000, warmup: 5_000 };
    let speedup_for = |imps: ImprovementSet, pf: &str| -> f64 {
        let base: Vec<f64> = parallel_map(&specs, |s| {
            crate::runner::simulate_with_options(s, imps, &core, scale, scale.warmup, Some("none"))
                .report
                .ipc()
        });
        let with: Vec<f64> = parallel_map(&specs, |s| {
            crate::runner::simulate_with_options(s, imps, &core, scale, scale.warmup, Some(pf))
                .report
                .ipc()
        });
        geomean(&with.iter().zip(&base).map(|(a, b)| a / b).collect::<Vec<_>>())
    };
    let fixed = crate::tables::fixed_traces_improvements();
    let comp_djolt = speedup_for(ImprovementSet::none(), "djolt");
    let fixed_djolt = speedup_for(fixed, "djolt");
    assert!(comp_djolt > 1.0, "djolt must help on competition traces: {comp_djolt}");
    assert!(fixed_djolt > 1.0, "djolt must help on fixed traces: {fixed_djolt}");
}

/// The §4.1 headline: a large share of traces shift by more than 5%
/// under the full fix set (the paper reports 43 of 135).
#[test]
fn many_traces_shift_beyond_5pct_under_all_improvements() {
    let grid = mini_grid();
    let ratios = grid.ipc_ratios("All_imps");
    let beyond = ratios.iter().filter(|r| (*r - 1.0).abs() > 0.05).count();
    assert!(
        beyond * 5 >= ratios.len(),
        "at least ~20% of traces must shift by >5%: {beyond}/{}",
        ratios.len()
    );
}

/// The scheduled (cached, flattened, work-stealing) grid must be
/// bit-identical to the uncached serial reference path: same IPC bits,
/// same conversion statistics, regardless of thread interleaving.
#[test]
fn scheduled_grid_matches_uncached_serial_path() {
    let specs: Vec<TraceSpec> = mini_suite().into_iter().take(3).collect();
    let core = CoreConfig::iiswc_main();
    let scale = ExperimentScale::test();
    let (grid, _) = Grid::compute_on_specs(&specs, &core, scale);

    let check = |imps: ImprovementSet, outcomes: &[crate::runner::TraceOutcome]| {
        assert_eq!(outcomes.len(), specs.len());
        for (spec, scheduled) in specs.iter().zip(outcomes) {
            let serial = simulate_conversion(spec, imps, &core, scale);
            assert_eq!(scheduled.trace, serial.trace);
            assert_eq!(
                scheduled.report.ipc().to_bits(),
                serial.report.ipc().to_bits(),
                "{}: scheduled IPC must be bit-identical to the serial path",
                spec.name()
            );
            assert_eq!(
                scheduled.conversion,
                serial.conversion,
                "{}: conversion statistics must match the serial path",
                spec.name()
            );
        }
    };
    check(ImprovementSet::none(), &grid.baseline);
    for (_, imps, outcomes) in &grid.runs {
        check(*imps, outcomes);
    }
}

/// The acceptance criterion for the artifact cache: across the whole
/// grid, trace generation runs exactly once per `(spec, length)` and
/// every conversion is fresh (each feeds exactly one simulation).
#[test]
fn grid_cache_accounting_is_exact() {
    let specs: Vec<TraceSpec> = mini_suite().into_iter().take(4).collect();
    let (_, report) = Grid::compute_on_specs(&specs, &CoreConfig::iiswc_main(), SCALE);
    let k = specs.len() as u64;
    let nconf = 10; // No_imp + the nine figure configurations
    assert_eq!(report.jobs, specs.len() * nconf as usize);
    let c = report.counters;
    assert_eq!(c.trace_misses, k, "each trace generated exactly once");
    assert_eq!(c.trace_hits, (nconf - 1) * k, "the other nine configs reuse it");
    assert_eq!(c.convert_misses, nconf * k, "every (trace, config) converts once");
    assert_eq!(c.convert_hits, 0, "grid conversions feed exactly one simulation");
    assert!((c.trace_hit_rate() - 0.9).abs() < 1e-12);
    assert_eq!(c.convert_hit_rate(), 0.0);
}

/// Determinism: the same grid computation twice gives identical results.
#[test]
fn experiments_are_deterministic() {
    let specs = mini_suite();
    let core = CoreConfig::iiswc_main();
    let a = parallel_map(&specs[..4], |s| {
        simulate_conversion(s, ImprovementSet::all(), &core, SCALE).report.ipc()
    });
    let b = parallel_map(&specs[..4], |s| {
        simulate_conversion(s, ImprovementSet::all(), &core, SCALE).report.ipc()
    });
    assert_eq!(a, b);
}

/// The converter's §4.2 statistics stay in the paper's ballpark.
#[test]
fn section42_statistics_are_in_range() {
    let s = crate::tables::section42(SCALE);
    assert!(
        (2.0..25.0).contains(&s.memory_no_destination_pct),
        "no-dest memory % out of range: {}",
        s.memory_no_destination_pct
    );
    assert!(
        (1.0..20.0).contains(&s.loads_multiple_destinations_pct),
        "multi-dest load % out of range: {}",
        s.loads_multiple_destinations_pct
    );
    assert!(
        s.two_cacheline_pct < 2.0,
        "two-cacheline accesses must be rare: {}",
        s.two_cacheline_pct
    );
    // Unlike the paper's 0.87% (which counts *consumers* of the lost X30
    // value), this counter tallies every call whose X30 destination was
    // dropped — a superset, bounded by the call density of the suite.
    assert!(s.x30_destinations_dropped_pct < 20.0);
}

/// The extension study (the paper's §4.4 recommendation): on the modern
/// decoupled front-end, dedicated instruction prefetchers gain much less
/// than on the IPC-1 coupled front-end.
#[test]
fn decoupled_frontend_deflates_prefetcher_gains() {
    let specs: Vec<TraceSpec> = workloads::ipc1_suite()
        .into_iter()
        .filter(|s| s.name().starts_with("server_0"))
        .step_by(5)
        .collect();
    let scale = ExperimentScale { trace_length: 30_000, warmup: 5_000 };
    let imps = crate::tables::fixed_traces_improvements();
    let speedup_on = |core: &CoreConfig| -> f64 {
        let base: Vec<f64> = parallel_map(&specs, |s| {
            crate::runner::simulate_with_options(s, imps, core, scale, scale.warmup, Some("none"))
                .report
                .ipc()
        });
        let with: Vec<f64> = parallel_map(&specs, |s| {
            crate::runner::simulate_with_options(s, imps, core, scale, scale.warmup, Some("djolt"))
                .report
                .ipc()
        });
        geomean(&with.iter().zip(&base).map(|(a, b)| a / b).collect::<Vec<_>>())
    };
    let coupled_gain = speedup_on(&CoreConfig::ipc1());
    let mut modern = CoreConfig::iiswc_main();
    modern.ideal_targets = true;
    let decoupled_gain = speedup_on(&modern);
    assert!(coupled_gain > 1.02, "prefetching must matter on the coupled core: {coupled_gain}");
    assert!(
        decoupled_gain < coupled_gain,
        "the decoupled front-end must deflate the gains: {decoupled_gain} vs {coupled_gain}"
    );
}

/// Table 2's structural features at reduced scale: the server L1I
/// gradient grows down the list and the memory-bound cluster is the
/// slowest server group.
#[test]
fn table2_has_the_papers_structure() {
    let scale = ExperimentScale { trace_length: 30_000, warmup: 0 };
    let rows = crate::tables::table2(scale);
    let server_l1i: Vec<(String, f64, f64)> = rows
        .iter()
        .filter(|r| r.trace.starts_with("server_"))
        .map(|r| (r.trace.clone(), r.l1i_mpki, r.ipc))
        .collect();
    assert!(server_l1i.len() > 30);
    // Gradient: the last five servers have more L1I pressure than the
    // first five (the paper's 16.8 -> 121.8 column).
    let head: f64 = server_l1i[..5].iter().map(|r| r.1).sum::<f64>() / 5.0;
    let tail: f64 = server_l1i[server_l1i.len() - 5..].iter().map(|r| r.1).sum::<f64>() / 5.0;
    assert!(tail > head * 1.5, "L1I gradient must grow: {head} -> {tail}");
    // The memory-bound cluster (017..022) is the slowest server group.
    let cluster: Vec<&(String, f64, f64)> = server_l1i
        .iter()
        .filter(|r| ("server_017"..="server_022").contains(&r.0.as_str()))
        .collect();
    let cluster_ipc = cluster.iter().map(|r| r.2).sum::<f64>() / cluster.len() as f64;
    let rest_ipc = server_l1i
        .iter()
        .filter(|r| !("server_017"..="server_022").contains(&r.0.as_str()))
        .map(|r| r.2)
        .sum::<f64>()
        / (server_l1i.len() - cluster.len()) as f64;
    assert!(
        cluster_ipc < rest_ipc / 2.0,
        "the memory-bound cluster must be far slower: {cluster_ipc} vs {rest_ipc}"
    );
    // gcc_002/003 are the slowest traces overall.
    let slowest =
        rows.iter().min_by(|a, b| a.ipc.partial_cmp(&b.ipc).expect("finite")).expect("non-empty");
    assert!(slowest.trace.starts_with("spec_gcc_00"), "slowest: {}", slowest.trace);
}
