//! CSV export of every experiment's data — the plotting-ready files the
//! artifact's `results_*.sh` scripts produce.

use std::io::Write;
use std::path::Path;

use crate::figures::{Fig1Row, Fig2Series, Fig3Row, Fig4Row, Fig5Row};
use crate::tables::{Tab2Row, Table3};

fn write_file(dir: &Path, name: &str, contents: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(name))?;
    f.write_all(contents.as_bytes())
}

/// Writes `fig1.csv`: configuration, geomean IPC variation (%).
pub fn figure1(dir: &Path, rows: &[Fig1Row]) -> std::io::Result<()> {
    let mut out = String::from("config,geomean_ipc_variation_pct\n");
    for r in rows {
        out.push_str(&format!("{},{:.4}\n", r.label, r.geomean_ipc_variation_pct));
    }
    write_file(dir, "fig1.csv", &out)
}

/// Writes `fig2.csv`: one column per configuration, sorted variations.
pub fn figure2(dir: &Path, series: &[Fig2Series]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(&series.iter().map(|s| s.label.clone()).collect::<Vec<_>>().join(","));
    out.push('\n');
    let rows = series.iter().map(|s| s.sorted_variations_pct.len()).max().unwrap_or(0);
    for i in 0..rows {
        let line: Vec<String> = series
            .iter()
            .map(|s| s.sorted_variations_pct.get(i).map_or(String::new(), |v| format!("{v:.4}")))
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    write_file(dir, "fig2.csv", &out)
}

/// Writes `fig3.csv`: trace, direction MPKI, both slowdowns (%).
pub fn figure3(dir: &Path, rows: &[Fig3Row]) -> std::io::Result<()> {
    let mut out =
        String::from("trace,direction_mpki,slowdown_branch_regs_pct,slowdown_flag_reg_pct\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            r.trace, r.branch_mpki, r.slowdown_branch_regs_pct, r.slowdown_flag_reg_pct
        ));
    }
    write_file(dir, "fig3.csv", &out)
}

/// Writes `fig4.csv`: trace, base-update load %, speedup (%).
pub fn figure4(dir: &Path, rows: &[Fig4Row]) -> std::io::Result<()> {
    let mut out = String::from("trace,base_update_load_pct,speedup_pct\n");
    for r in rows {
        out.push_str(&format!("{},{:.4},{:.4}\n", r.trace, r.base_update_load_pct, r.speedup_pct));
    }
    write_file(dir, "fig4.csv", &out)
}

/// Writes `fig5.csv`: trace, RAS MPKI before/after, speedup (%).
pub fn figure5(dir: &Path, rows: &[Fig5Row]) -> std::io::Result<()> {
    let mut out = String::from("trace,ras_mpki_original,ras_mpki_improved,speedup_pct\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4}\n",
            r.trace, r.ras_mpki_original, r.ras_mpki_improved, r.speedup_pct
        ));
    }
    write_file(dir, "fig5.csv", &out)
}

/// Writes `tab2.csv`: the full characterization table.
pub fn table2(dir: &Path, rows: &[Tab2Row]) -> std::io::Result<()> {
    let mut out = String::from(
        "trace,ipc,branch_mpki_overall,branch_mpki_direction,branch_mpki_target,\
         l1i_mpki,l1d_mpki,l2_mpki,llc_mpki\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            r.trace,
            r.ipc,
            r.branch_mpki_overall,
            r.branch_mpki_direction,
            r.branch_mpki_target,
            r.l1i_mpki,
            r.l1d_mpki,
            r.l2_mpki,
            r.llc_mpki
        ));
    }
    write_file(dir, "tab2.csv", &out)
}

/// Writes `tab3.csv`: both rankings side by side.
pub fn table3(dir: &Path, t: &Table3, name: &str) -> std::io::Result<()> {
    let mut out = String::from(
        "rank_competition,prefetcher_competition,speedup_competition,\
         rank_fixed,prefetcher_fixed,speedup_fixed\n",
    );
    for (c, f) in t.competition.iter().zip(&t.fixed) {
        out.push_str(&format!(
            "{},{},{:.4},{},{},{:.4}\n",
            c.rank, c.prefetcher, c.speedup, f.rank, f.prefetcher, f.speedup
        ));
    }
    write_file(dir, name, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::Tab3Entry;

    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new() -> ScratchDir {
            let mut p = std::env::temp_dir();
            p.push(format!("trace-rebase-csv-{}", std::process::id()));
            ScratchDir(p)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn csv_files_are_written_with_headers() {
        let dir = ScratchDir::new();
        figure1(&dir.0, &[Fig1Row { label: "All_imps".into(), geomean_ipc_variation_pct: -3.5 }])
            .unwrap();
        let text = std::fs::read_to_string(dir.0.join("fig1.csv")).unwrap();
        assert!(text.starts_with("config,"));
        assert!(text.contains("All_imps,-3.5000"));

        let t3 = Table3 {
            competition: vec![Tab3Entry { rank: 1, prefetcher: "epi".into(), speedup: 1.29 }],
            fixed: vec![Tab3Entry { rank: 1, prefetcher: "epi".into(), speedup: 1.38 }],
            tuned_fnl_mma_fixed: 1.38,
        };
        table3(&dir.0, &t3, "tab3.csv").unwrap();
        let text = std::fs::read_to_string(dir.0.join("tab3.csv")).unwrap();
        assert!(text.contains("1,epi,1.2900,1,epi,1.3800"));
    }

    #[test]
    fn fig2_columns_align() {
        let dir = ScratchDir::new();
        figure2(
            &dir.0,
            &[
                Fig2Series {
                    label: "a".into(),
                    sorted_variations_pct: vec![1.0, 0.0],
                    traces_beyond_5pct: 0,
                },
                Fig2Series {
                    label: "b".into(),
                    sorted_variations_pct: vec![2.0],
                    traces_beyond_5pct: 0,
                },
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(dir.0.join("fig2.csv")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1.0000,2.0000");
        assert_eq!(lines[2], "0.0000,");
    }
}
