//! Component micro-benchmarks: throughput of every substrate the paper's
//! pipeline is built from.

use std::hint::black_box;

use bpred::{Btb, DirectionPredictor, IndirectPredictor, Ittage, ReturnAddressStack, Tage};
use converter::{Converter, ImprovementSet};
use experiments::bench::BenchGroup;
use iprefetch::harness::{evaluate, looping_trace};
use memsys::{Hierarchy, HierarchyConfig};
use sim::{CoreConfig, Simulator};
use workloads::{TraceSpec, WorkloadKind};

const N: usize = 20_000;

fn bench_generator() {
    let mut group = BenchGroup::new("generator");
    for kind in [WorkloadKind::Server, WorkloadKind::PointerChase, WorkloadKind::Crypto] {
        let spec = TraceSpec::new("bench", kind, 1).with_length(N);
        group.bench_function(format!("{kind}"), || black_box(spec.generate()));
    }
    group.finish();
}

fn bench_converter() {
    let trace = TraceSpec::new("bench", WorkloadKind::Server, 2).with_length(N).generate();
    let mut group = BenchGroup::new("converter");
    for imps in [ImprovementSet::none(), ImprovementSet::all()] {
        group.bench_function(imps.to_string(), || {
            let mut converter = Converter::new(imps);
            black_box(converter.convert_all(trace.iter()))
        });
    }
    group.finish();
}

fn bench_codecs() {
    let trace = TraceSpec::new("bench", WorkloadKind::Streaming, 3).with_length(N).generate();
    let mut group = BenchGroup::new("codecs");
    group.bench_function("cvp_encode", || {
        let mut buf = Vec::with_capacity(N * 32);
        let mut w = cvp_trace::CvpWriter::new(&mut buf);
        for i in &trace {
            w.write(i).unwrap();
        }
        black_box(buf.len())
    });
    let mut encoded = Vec::new();
    let mut w = cvp_trace::CvpWriter::new(&mut encoded);
    for i in &trace {
        w.write(i).unwrap();
    }
    group.bench_function("cvp_decode", || {
        let n = cvp_trace::CvpReader::new(encoded.as_slice()).count();
        black_box(n)
    });
    group.finish();
}

fn bench_predictors() {
    let mut group = BenchGroup::new("predictors");
    group.bench_function("tage_64kb", || {
        let mut tage = Tage::default_64kb();
        for i in 1..=N as u64 {
            let pc = 0x400 + (i % 512) * 4;
            let taken = (i * i) % 3 != 0;
            let p = tage.predict(pc);
            tage.update(pc, taken);
            black_box(p);
        }
    });
    group.bench_function("ittage_64kb", || {
        let mut ittage = Ittage::default_64kb();
        for i in 1..=N as u64 {
            let pc = 0x800 + (i % 64) * 8;
            let p = ittage.predict(pc);
            ittage.update(pc, 0x9000 + (i % 4) * 0x100);
            ittage.push_history(i % 2 == 0);
            black_box(p);
        }
    });
    group.bench_function("btb_16k", || {
        let mut btb = Btb::new(16 * 1024, 8);
        for i in 1..=N as u64 {
            let pc = 0x1000 + (i % 4096) * 4;
            black_box(btb.lookup(pc));
            btb.update(pc, pc + 0x40, champsim_trace::BranchType::DirectJump);
        }
    });
    group.bench_function("ras", || {
        let mut ras = ReturnAddressStack::new(64);
        for i in 1..=N as u64 {
            if i % 3 == 0 {
                black_box(ras.pop());
            } else {
                ras.push(i);
            }
        }
    });
    group.finish();
}

fn bench_memory() {
    let mut group = BenchGroup::new("memory");
    group.bench_function("hierarchy_stream", || {
        let mut mem = Hierarchy::new(HierarchyConfig::iiswc_main());
        let mut total = 0u64;
        for i in 0..N as u64 {
            total += mem.access_data(0x400, 0x10_0000 + i * 64, false);
        }
        black_box(total)
    });
    group.finish();
}

fn bench_iprefetchers() {
    let trace = looping_trace(N, 700);
    let mut group = BenchGroup::new("iprefetch");
    for name in iprefetch::CONTEST_NAMES {
        group.bench_function(name, || {
            let mut pf = iprefetch::by_name(name).expect("known name");
            black_box(evaluate(pf.as_mut(), &trace, 256))
        });
    }
    group.finish();
}

fn bench_simulator() {
    let trace = TraceSpec::new("bench", WorkloadKind::Server, 4).with_length(N).generate();
    let mut converter = Converter::new(ImprovementSet::all());
    let records = converter.convert_all(trace.iter());
    let mut group = BenchGroup::new("simulator");
    group.bench_function("iiswc_main", || {
        black_box(Simulator::new(CoreConfig::iiswc_main()).run(&records))
    });
    group.bench_function("ipc1", || black_box(Simulator::new(CoreConfig::ipc1()).run(&records)));
    group.finish();
}

fn main() {
    bench_generator();
    bench_converter();
    bench_codecs();
    bench_predictors();
    bench_memory();
    bench_iprefetchers();
    bench_simulator();
}
