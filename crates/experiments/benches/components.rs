//! Component micro-benchmarks: throughput of every substrate the paper's
//! pipeline is built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bpred::{Btb, DirectionPredictor, IndirectPredictor, Ittage, ReturnAddressStack, Tage};
use converter::{Converter, ImprovementSet};
use iprefetch::harness::{evaluate, looping_trace};
use memsys::{Hierarchy, HierarchyConfig};
use sim::{CoreConfig, Simulator};
use workloads::{TraceSpec, WorkloadKind};

const N: usize = 20_000;

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.throughput(Throughput::Elements(N as u64));
    for kind in [WorkloadKind::Server, WorkloadKind::PointerChase, WorkloadKind::Crypto] {
        group.bench_function(format!("{kind}"), |b| {
            let spec = TraceSpec::new("bench", kind, 1).with_length(N);
            b.iter(|| black_box(spec.generate()));
        });
    }
    group.finish();
}

fn bench_converter(c: &mut Criterion) {
    let trace = TraceSpec::new("bench", WorkloadKind::Server, 2).with_length(N).generate();
    let mut group = c.benchmark_group("converter");
    group.throughput(Throughput::Elements(N as u64));
    for imps in [ImprovementSet::none(), ImprovementSet::all()] {
        group.bench_function(imps.to_string(), |b| {
            b.iter(|| {
                let mut converter = Converter::new(imps);
                black_box(converter.convert_all(trace.iter()))
            });
        });
    }
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let trace = TraceSpec::new("bench", WorkloadKind::Streaming, 3).with_length(N).generate();
    let mut group = c.benchmark_group("codecs");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("cvp_encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(N * 32);
            let mut w = cvp_trace::CvpWriter::new(&mut buf);
            for i in &trace {
                w.write(i).unwrap();
            }
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    let mut w = cvp_trace::CvpWriter::new(&mut encoded);
    for i in &trace {
        w.write(i).unwrap();
    }
    group.bench_function("cvp_decode", |b| {
        b.iter(|| {
            let n = cvp_trace::CvpReader::new(encoded.as_slice()).count();
            black_box(n)
        });
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("tage_64kb", |b| {
        let mut tage = Tage::default_64kb();
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..N {
                i = i.wrapping_add(1);
                let pc = 0x400 + (i % 512) * 4;
                let taken = (i * i) % 3 != 0;
                let p = tage.predict(pc);
                tage.update(pc, taken);
                black_box(p);
            }
        });
    });
    group.bench_function("ittage_64kb", |b| {
        let mut ittage = Ittage::default_64kb();
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..N {
                i = i.wrapping_add(1);
                let pc = 0x800 + (i % 64) * 8;
                let p = ittage.predict(pc);
                ittage.update(pc, 0x9000 + (i % 4) * 0x100);
                ittage.push_history(i % 2 == 0);
                black_box(p);
            }
        });
    });
    group.bench_function("btb_16k", |b| {
        let mut btb = Btb::new(16 * 1024, 8);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..N {
                i = i.wrapping_add(1);
                let pc = 0x1000 + (i % 4096) * 4;
                black_box(btb.lookup(pc));
                btb.update(pc, pc + 0x40, champsim_trace::BranchType::DirectJump);
            }
        });
    });
    group.bench_function("ras", |b| {
        let mut ras = ReturnAddressStack::new(64);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..N {
                i = i.wrapping_add(1);
                if i % 3 == 0 {
                    black_box(ras.pop());
                } else {
                    ras.push(i);
                }
            }
        });
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("hierarchy_stream", |b| {
        b.iter(|| {
            let mut mem = Hierarchy::new(HierarchyConfig::iiswc_main());
            let mut total = 0u64;
            for i in 0..N as u64 {
                total += mem.access_data(0x400, 0x10_0000 + i * 64, false);
            }
            black_box(total)
        });
    });
    group.finish();
}

fn bench_iprefetchers(c: &mut Criterion) {
    let trace = looping_trace(N, 700);
    let mut group = c.benchmark_group("iprefetch");
    group.throughput(Throughput::Elements(N as u64));
    for name in iprefetch::CONTEST_NAMES {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pf = iprefetch::by_name(name).expect("known name");
                black_box(evaluate(pf.as_mut(), &trace, 256))
            });
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let trace = TraceSpec::new("bench", WorkloadKind::Server, 4).with_length(N).generate();
    let mut converter = Converter::new(ImprovementSet::all());
    let records = converter.convert_all(trace.iter());
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("iiswc_main", |b| {
        b.iter(|| black_box(Simulator::new(CoreConfig::iiswc_main()).run(&records)));
    });
    group.bench_function("ipc1", |b| {
        b.iter(|| black_box(Simulator::new(CoreConfig::ipc1()).run(&records)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generator,
    bench_converter,
    bench_codecs,
    bench_predictors,
    bench_memory,
    bench_iprefetchers,
    bench_simulator
);
criterion_main!(benches);
