//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the same short workload under two (or more)
//! variants of one design decision, reporting both the wall-clock cost
//! and — through eprintln at setup — the modeled-performance effect, so
//! regressions in either direction are visible.

use std::hint::black_box;

use converter::{Converter, Improvement, ImprovementSet, InferenceContext};
use experiments::bench::BenchGroup;
use memsys::ReplacementPolicy;
use sim::{CoreConfig, PredictorKind, Simulator};
use workloads::{TraceSpec, WorkloadKind};

const N: usize = 15_000;

fn records(
    kind: WorkloadKind,
    seed: u64,
    imps: ImprovementSet,
) -> Vec<champsim_trace::ChampsimRecord> {
    let trace = TraceSpec::new("ablation", kind, seed).with_length(N).generate();
    Converter::new(imps).convert_all(trace.iter())
}

/// Addressing-mode inference: the cost of the value-tracking heuristic
/// (§3.1.2) versus a converter run that never consults it.
fn ablate_inference() {
    let trace = TraceSpec::new("ablation", WorkloadKind::PointerChase, 9).with_length(N).generate();
    let mut group = BenchGroup::new("ablation_inference");
    group.bench_function("with_inference", || {
        let mut ctx = InferenceContext::new();
        let mut updates = 0u64;
        for insn in &trace {
            if ctx.infer(insn).updates_base() {
                updates += 1;
            }
            ctx.commit(insn);
        }
        black_box(updates)
    });
    group.bench_function("commit_only", || {
        let mut ctx = InferenceContext::new();
        for insn in &trace {
            ctx.commit(insn);
        }
        black_box(ctx.registers().is_known(0))
    });
    group.finish();
}

/// Decoupled front-end: the paper's §4.4 point that a run-ahead fetcher
/// changes instruction-prefetching conclusions.
fn ablate_frontend() {
    let recs = records(WorkloadKind::Server, 10, ImprovementSet::all());
    let decoupled = CoreConfig::iiswc_main();
    let coupled =
        CoreConfig { decoupled_frontend: false, frontend_lookahead: 0, ..CoreConfig::iiswc_main() };
    let ipc_d = Simulator::new(decoupled.clone()).run(&recs).ipc();
    let ipc_c = Simulator::new(coupled.clone()).run(&recs).ipc();
    eprintln!("[ablation] decoupled IPC {ipc_d:.3} vs coupled IPC {ipc_c:.3}");
    let mut group = BenchGroup::new("ablation_frontend");
    group.bench_function("decoupled", || black_box(Simulator::new(decoupled.clone()).run(&recs)));
    group.bench_function("coupled", || black_box(Simulator::new(coupled.clone()).run(&recs)));
    group.finish();
}

/// Replacement policy across the hierarchy.
fn ablate_replacement() {
    let recs = records(WorkloadKind::Streaming, 11, ImprovementSet::all());
    let mut group = BenchGroup::new("ablation_replacement");
    for (name, policy) in [
        ("lru", ReplacementPolicy::Lru),
        ("srrip", ReplacementPolicy::Srrip),
        ("random", ReplacementPolicy::Random),
    ] {
        let core = CoreConfig {
            hierarchy: CoreConfig::iiswc_main().hierarchy.with_replacement(policy),
            ..CoreConfig::iiswc_main()
        };
        group.bench_function(name, || black_box(Simulator::new(core.clone()).run(&recs)));
    }
    group.finish();
}

/// Direction predictor tier: bimodal vs gshare vs TAGE.
fn ablate_predictor() {
    let recs = records(WorkloadKind::BranchyInt, 12, ImprovementSet::all());
    let mut group = BenchGroup::new("ablation_predictor");
    for (name, kind) in [
        ("bimodal", PredictorKind::Bimodal(16 * 1024)),
        ("gshare", PredictorKind::Gshare(64 * 1024, 14)),
        ("perceptron", PredictorKind::Perceptron),
        ("tage_small", PredictorKind::TageSmall),
        ("tage_64kb", PredictorKind::Tage64kb),
    ] {
        let core = CoreConfig { predictor: kind, ..CoreConfig::iiswc_main() };
        group.bench_function(name, || black_box(Simulator::new(core.clone()).run(&recs)));
    }
    group.finish();
}

/// The split-micro-op decision (§3.1.2): converting with and without the
/// base-update split, measuring the end-to-end pipeline cost.
fn ablate_split() {
    let mut group = BenchGroup::new("ablation_split");
    for (name, imps) in [
        ("no_split", ImprovementSet::all().without(Improvement::BaseUpdate)),
        ("split", ImprovementSet::all()),
    ] {
        group.bench_function(name, || {
            let recs = records(WorkloadKind::PointerChase, 13, imps);
            black_box(Simulator::new(CoreConfig::iiswc_main()).run(&recs))
        });
    }
    group.finish();
}

/// Address translation on/off (the TLB substrate is opt-in because the
/// paper's configuration does not discuss it).
fn ablate_translation() {
    let recs = records(WorkloadKind::PointerChase, 14, ImprovementSet::all());
    let plain = CoreConfig::iiswc_main();
    let translated = CoreConfig {
        hierarchy: CoreConfig::iiswc_main().hierarchy.with_translation(),
        ..CoreConfig::iiswc_main()
    };
    let mut group = BenchGroup::new("ablation_translation");
    group.bench_function("no_tlb", || black_box(Simulator::new(plain.clone()).run(&recs)));
    group
        .bench_function("icelake_tlb", || black_box(Simulator::new(translated.clone()).run(&recs)));
    group.finish();
}

/// MSHR count: memory-level parallelism ceiling.
fn ablate_mshrs() {
    let recs = records(WorkloadKind::BranchyInt, 15, ImprovementSet::all());
    let mut group = BenchGroup::new("ablation_mshrs");
    for mshrs in [4usize, 16, 32, 128] {
        let core = CoreConfig { l1d_mshrs: mshrs, ..CoreConfig::iiswc_main() };
        group.bench_function(format!("mshrs_{mshrs}"), || {
            black_box(Simulator::new(core.clone()).run(&recs))
        });
    }
    group.finish();
}

fn main() {
    ablate_inference();
    ablate_frontend();
    ablate_replacement();
    ablate_predictor();
    ablate_split();
    ablate_translation();
    ablate_mshrs();
}
