//! One benchmark per paper table and figure.
//!
//! Each benchmark regenerates its experiment at a reduced scale (a
//! sub-sampled suite and short traces), so the full set finishes in
//! minutes while exercising exactly the code paths the paper-scale
//! `experiments` binary runs. Paper-scale output lives in
//! `EXPERIMENTS.md`; these benches track the *cost* of regeneration and
//! guard the pipelines against performance regressions.

use std::hint::black_box;

use converter::ImprovementSet;
use experiments::bench::BenchGroup;
use experiments::figures::{figure1, figure2, figure3, figure4, figure5, Grid};
use experiments::runner::{parallel_map, simulate_conversion, ExperimentScale};
use experiments::tables::{section42, table1, table2, table3};
use sim::CoreConfig;
use workloads::TraceSpec;

const SCALE: ExperimentScale = ExperimentScale { trace_length: 10_000, warmup: 2_500 };

/// Every eighth public trace: enough spread to exercise all kinds.
fn mini_specs() -> Vec<TraceSpec> {
    workloads::cvp1_public_suite().into_iter().step_by(8).collect()
}

fn mini_grid() -> Grid {
    let specs = mini_specs();
    let core = CoreConfig::iiswc_main();
    let baseline =
        parallel_map(&specs, |s| simulate_conversion(s, ImprovementSet::none(), &core, SCALE));
    let runs = experiments::figures::figure_configurations()
        .into_iter()
        .map(|(label, imps)| {
            let outcomes = parallel_map(&specs, |s| simulate_conversion(s, imps, &core, SCALE));
            (label, imps, outcomes)
        })
        .collect();
    Grid { baseline, runs }
}

fn bench_figures() {
    let mut group = BenchGroup::new("figures");

    // The grid dominates all five figures; benchmark it once.
    group.bench_function("grid_compute", || black_box(mini_grid()));

    let grid = mini_grid();
    group.bench_function("fig1_geomean", || black_box(figure1(&grid)));
    group.bench_function("fig2_per_trace", || black_box(figure2(&grid)));
    group.bench_function("fig3_branch_mpki", || black_box(figure3(&grid)));
    group.bench_function("fig4_base_update", || black_box(figure4(&grid)));
    group.bench_function("fig5_call_stack", || black_box(figure5(&grid)));
    group.finish();
}

fn bench_tables() {
    let mut group = BenchGroup::new("tables");
    group.bench_function("tab1_inventory", || black_box(table1(SCALE)));
    group.bench_function("tab2_characterization", || black_box(table2(SCALE)));
    group.bench_function("tab3_ipc1_ranking", || black_box(table3(SCALE)));
    group.bench_function("section42_stats", || black_box(section42(SCALE)));
    group.finish();
}

fn main() {
    bench_figures();
    bench_tables();
}
