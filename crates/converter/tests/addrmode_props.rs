//! Randomized tests for the addressing-mode inference heuristic (§3.1.2).
//!
//! These were property-based tests; they now drive the same invariants
//! from a seeded deterministic PRNG so the suite runs without external
//! test dependencies (the workspace builds offline).

use converter::{AddressingMode, InferenceContext, BASE_UPDATE_IMMEDIATE_WINDOW};
use cvp_trace::{CvpInstruction, OutputValue};

/// SplitMix64: a tiny seeded generator for test-input synthesis.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
    }
}

/// Inference never panics and never names a base register that is not
/// both a source and a destination.
#[test]
fn inferred_base_is_always_a_source_and_destination() {
    let mut rng = Rng(0xadd7_e55e);
    for _ in 0..2000 {
        let pc = rng.next();
        let ea = rng.next();
        let mut insn = CvpInstruction::load(pc, ea, 8);
        for _ in 0..rng.below(4) {
            insn.push_source(rng.below(65) as u8);
        }
        for _ in 0..rng.below(3) {
            let d = rng.below(65) as u8;
            let v = rng.next();
            if !insn.writes(d) {
                insn.push_destination(d, OutputValue::scalar(v));
            }
        }
        let ctx = InferenceContext::new();
        match ctx.infer(&insn) {
            AddressingMode::Simple => {}
            AddressingMode::PreIndex { base } | AddressingMode::PostIndex { base } => {
                assert!(insn.reads(base) && insn.writes(base), "base {base} of {insn:?}");
            }
        }
    }
}

/// A textbook pre-index load (new base == effective address) is always
/// recognized, regardless of surrounding values.
#[test]
fn textbook_pre_index_is_recognized() {
    let mut rng = Rng(0x13ee_7a5e);
    for _ in 0..2000 {
        let old_base = rng.next();
        let imm = 1 + rng.below(BASE_UPDATE_IMMEDIATE_WINDOW as u64) as i64;
        let data = rng.next();
        let new_base = old_base.wrapping_add(imm as u64);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(0, old_base));
        let ld = CvpInstruction::load(4, new_base, 8)
            .with_sources(&[0])
            .with_destination(1, data)
            .with_destination(0, new_base);
        assert_eq!(ctx.infer(&ld), AddressingMode::PreIndex { base: 0 });
    }
}

/// A textbook post-index load (effective address == old base) is always
/// recognized when the old value is known.
#[test]
fn textbook_post_index_is_recognized() {
    let mut rng = Rng(0x9057_1dec);
    for _ in 0..2000 {
        let old_base = rng.next();
        let imm = 1 + rng.below(BASE_UPDATE_IMMEDIATE_WINDOW as u64) as i64;
        let data = rng.next();
        let new_base = old_base.wrapping_add(imm as u64);
        // imm != 0 by construction; EA == new base collisions would
        // classify as pre-index, but new_base differs from old_base here.
        assert_ne!(new_base, old_base);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(2, old_base));
        let ld = CvpInstruction::load(4, old_base, 8)
            .with_sources(&[2])
            .with_destination(1, data)
            .with_destination(2, new_base);
        assert_eq!(ctx.infer(&ld), AddressingMode::PostIndex { base: 2 });
    }
}

/// A register whose written value lies far outside the immediate window
/// is never classified as a base update.
#[test]
fn far_values_are_never_base_updates() {
    let mut rng = Rng(0xfa57_0ff5);
    let window = BASE_UPDATE_IMMEDIATE_WINDOW as u64;
    let span = (i64::MAX / 2) as u64 - window - 1;
    for _ in 0..2000 {
        let base_value = rng.next();
        let delta = window + 1 + rng.below(span);
        let ea = base_value;
        let written = ea.wrapping_add(delta);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(3, base_value));
        let ld = CvpInstruction::load(4, ea, 8).with_sources(&[3]).with_destination(3, written);
        assert_eq!(ctx.infer(&ld), AddressingMode::Simple);
    }
}
