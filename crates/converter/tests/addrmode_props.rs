//! Property tests for the addressing-mode inference heuristic (§3.1.2).

use converter::{AddressingMode, InferenceContext, BASE_UPDATE_IMMEDIATE_WINDOW};
use cvp_trace::{CvpInstruction, OutputValue};
use proptest::prelude::*;

proptest! {
    /// Inference never panics and never names a base register that is
    /// not both a source and a destination.
    #[test]
    fn inferred_base_is_always_a_source_and_destination(
        pc in any::<u64>(),
        ea in any::<u64>(),
        srcs in prop::collection::vec(0u8..65, 0..4),
        dsts in prop::collection::vec((0u8..65, any::<u64>()), 0..3),
    ) {
        let mut insn = CvpInstruction::load(pc, ea, 8);
        for s in &srcs {
            insn.push_source(*s);
        }
        for (d, v) in &dsts {
            if !insn.writes(*d) {
                insn.push_destination(*d, OutputValue::scalar(*v));
            }
        }
        let ctx = InferenceContext::new();
        match ctx.infer(&insn) {
            AddressingMode::Simple => {}
            AddressingMode::PreIndex { base } | AddressingMode::PostIndex { base } => {
                prop_assert!(insn.reads(base) && insn.writes(base));
            }
        }
    }

    /// A textbook pre-index load (new base == effective address) is
    /// always recognized, regardless of surrounding values.
    #[test]
    fn textbook_pre_index_is_recognized(
        old_base in any::<u64>(),
        imm in 1i64..=BASE_UPDATE_IMMEDIATE_WINDOW,
        data in any::<u64>(),
    ) {
        let new_base = old_base.wrapping_add(imm as u64);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(0, old_base));
        let ld = CvpInstruction::load(4, new_base, 8)
            .with_sources(&[0])
            .with_destination(1, data)
            .with_destination(0, new_base);
        prop_assert_eq!(ctx.infer(&ld), AddressingMode::PreIndex { base: 0 });
    }

    /// A textbook post-index load (effective address == old base) is
    /// always recognized when the old value is known.
    #[test]
    fn textbook_post_index_is_recognized(
        old_base in any::<u64>(),
        imm in 1i64..=BASE_UPDATE_IMMEDIATE_WINDOW,
        data in any::<u64>(),
    ) {
        let new_base = old_base.wrapping_add(imm as u64);
        // Skip the ambiguous imm == 0 case (excluded by construction)
        // and EA == new base collisions (they classify as pre-index).
        prop_assume!(new_base != old_base);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(2, old_base));
        let ld = CvpInstruction::load(4, old_base, 8)
            .with_sources(&[2])
            .with_destination(1, data)
            .with_destination(2, new_base);
        prop_assert_eq!(ctx.infer(&ld), AddressingMode::PostIndex { base: 2 });
    }

    /// A register whose written value lies far outside the immediate
    /// window is never classified as a base update.
    #[test]
    fn far_values_are_never_base_updates(
        base_value in any::<u64>(),
        delta in (BASE_UPDATE_IMMEDIATE_WINDOW + 1)..i64::MAX / 2,
    ) {
        let ea = base_value;
        let written = ea.wrapping_add(delta as u64);
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(3, base_value));
        let ld = CvpInstruction::load(4, ea, 8)
            .with_sources(&[3])
            .with_destination(3, written);
        prop_assert_eq!(ctx.infer(&ld), AddressingMode::Simple);
    }
}
