use cvp_trace::{CvpInstruction, Reg, RegisterFile};

/// Largest immediate-offset magnitude accepted when inferring a base
/// update.
///
/// Aarch64 pre/post-indexing addressing uses a signed 9-bit immediate
/// (`-256..=255`); a candidate base register whose written value differs
/// from the effective address by more than this cannot have been produced
/// by an indexing increment.
pub const BASE_UPDATE_IMMEDIATE_WINDOW: i64 = 255;

/// Inferred addressing mode of a CVP-1 memory instruction.
///
/// CVP-1 traces do not record addressing modes; the paper's `base-update`
/// improvement reconstructs them from the registers and the values the
/// trace *does* record (§3.1.2). The inference is best-effort by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressingMode {
    /// No base register update: a plain access (or a load pair / vector
    /// load whose extra destinations are all populated from memory).
    Simple,
    /// Pre-indexing increment: the base register is bumped **before** the
    /// access, so the effective address equals the updated base.
    PreIndex {
        /// The register that serves as updated base.
        base: Reg,
    },
    /// Post-indexing increment: the access uses the old base value and the
    /// register is bumped **after** the access.
    PostIndex {
        /// The register that serves as updated base.
        base: Reg,
    },
}

impl AddressingMode {
    /// The updated base register, if the mode is a base update.
    pub fn base_register(self) -> Option<Reg> {
        match self {
            AddressingMode::Simple => None,
            AddressingMode::PreIndex { base } | AddressingMode::PostIndex { base } => Some(base),
        }
    }

    /// `true` for the two base-updating modes.
    pub fn updates_base(self) -> bool {
        self.base_register().is_some()
    }
}

/// Value-tracking context for addressing-mode inference.
///
/// Wraps the architectural [`RegisterFile`] replayed over the trace. Keep
/// one context per trace and feed it every instruction via
/// [`InferenceContext::commit`] after inferring.
///
/// # Example
///
/// ```
/// use converter::{AddressingMode, InferenceContext};
/// use cvp_trace::CvpInstruction;
///
/// let mut ctx = InferenceContext::new();
/// // LDR X1, [X0], #16  — post-index: X0 starts at 0x1000, access at
/// // 0x1000, X0 becomes 0x1010.
/// ctx.commit(&CvpInstruction::alu(0).with_destination(0, 0x1000u64));
/// let load = CvpInstruction::load(4, 0x1000, 8)
///     .with_sources(&[0])
///     .with_destination(1, 7u64)
///     .with_destination(0, 0x1010u64);
/// assert_eq!(ctx.infer(&load), AddressingMode::PostIndex { base: 0 });
/// ```
#[derive(Debug, Clone, Default)]
pub struct InferenceContext {
    regs: RegisterFile,
}

impl InferenceContext {
    /// Creates a context with all register values unknown.
    pub fn new() -> InferenceContext {
        InferenceContext { regs: RegisterFile::new() }
    }

    /// Read-only view of the tracked register values.
    pub fn registers(&self) -> &RegisterFile {
        &self.regs
    }

    /// Commits an instruction's destination values into the tracked state.
    ///
    /// Call this for **every** trace instruction, after any inference on
    /// it, so later inferences see up-to-date input values.
    pub fn commit(&mut self, insn: &CvpInstruction) {
        self.regs.apply(insn);
    }

    /// Infers the addressing mode of a memory instruction.
    ///
    /// The heuristic follows the trace maintainer's recipe as described in
    /// the paper:
    ///
    /// 1. A candidate base register must appear among both the sources and
    ///    the destinations (indexing writes the base back).
    /// 2. The value written to the candidate (recorded in the trace) is
    ///    compared with the effective address: an exact match means the
    ///    update happened **before** the access (pre-index); a difference
    ///    within the signed immediate window means it happened **after**
    ///    (post-index).
    /// 3. When the candidate's *old* value is known from replay, a
    ///    post-index classification additionally requires the effective
    ///    address to equal the old value, rejecting coincidental matches
    ///    (e.g. a load pair that happens to load an address-like value).
    ///
    /// Non-memory instructions and instructions with no source/destination
    /// overlap are [`AddressingMode::Simple`].
    pub fn infer(&self, insn: &CvpInstruction) -> AddressingMode {
        if !insn.is_memory() {
            return AddressingMode::Simple;
        }
        for &candidate in insn.sources() {
            if !insn.writes(candidate) {
                continue;
            }
            let Some(written) = insn.value_of(candidate) else { continue };
            if written.hi != 0 {
                continue; // vector registers are never address bases
            }
            let ea = insn.mem_address;
            if written.lo == ea {
                return AddressingMode::PreIndex { base: candidate };
            }
            let delta = written.lo.wrapping_sub(ea) as i64;
            if delta.abs() <= BASE_UPDATE_IMMEDIATE_WINDOW && delta != 0 {
                // Post-index: access at the old base, bump afterwards.
                // When replay knows the old value, require it to match the
                // effective address.
                match self.regs.value(candidate) {
                    Some(old) if old.lo != ea => continue,
                    _ => return AddressingMode::PostIndex { base: candidate },
                }
            }
        }
        AddressingMode::Simple
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(reg: Reg, value: u64) -> InferenceContext {
        let mut ctx = InferenceContext::new();
        ctx.commit(&CvpInstruction::alu(0).with_destination(reg, value));
        ctx
    }

    #[test]
    fn plain_load_is_simple() {
        let ctx = InferenceContext::new();
        let load = CvpInstruction::load(0, 0x100, 8).with_sources(&[0]).with_destination(1, 5u64);
        assert_eq!(ctx.infer(&load), AddressingMode::Simple);
    }

    #[test]
    fn pre_index_matches_effective_address() {
        // LDR X1, [X0, #8]!  with X0 old = 0x1000: EA = 0x1008 = new X0.
        let ctx = ctx_with(0, 0x1000);
        let load = CvpInstruction::load(4, 0x1008, 8)
            .with_sources(&[0])
            .with_destination(1, 0u64)
            .with_destination(0, 0x1008u64);
        assert_eq!(ctx.infer(&load), AddressingMode::PreIndex { base: 0 });
    }

    #[test]
    fn post_index_bumps_after_access() {
        // LDR X1, [X0], #32 with X0 old = 0x2000.
        let ctx = ctx_with(0, 0x2000);
        let load = CvpInstruction::load(4, 0x2000, 8)
            .with_sources(&[0])
            .with_destination(1, 0u64)
            .with_destination(0, 0x2020u64);
        assert_eq!(ctx.infer(&load), AddressingMode::PostIndex { base: 0 });
    }

    #[test]
    fn negative_post_index_offset_is_accepted() {
        let ctx = ctx_with(2, 0x3000);
        let load =
            CvpInstruction::load(4, 0x3000, 8).with_sources(&[2]).with_destination(2, 0x2FF8u64);
        assert_eq!(ctx.infer(&load), AddressingMode::PostIndex { base: 2 });
    }

    #[test]
    fn load_pair_reloading_base_is_not_base_update() {
        // LDP X1, X0, [X0]: X0 receives a memory value far from the EA.
        let ctx = ctx_with(0, 0x4000);
        let load = CvpInstruction::load(4, 0x4000, 8)
            .with_sources(&[0])
            .with_destination(1, 1u64)
            .with_destination(0, 0xdead_beefu64);
        assert_eq!(ctx.infer(&load), AddressingMode::Simple);
    }

    #[test]
    fn coincidental_near_value_is_rejected_when_old_value_disagrees() {
        // X0's memory-loaded value lands within the window of the EA, but
        // replay knows the old X0 was nowhere near the EA, so this cannot
        // be a post-index access through X0.
        let ctx = ctx_with(0, 0x9999_0000);
        let load =
            CvpInstruction::load(4, 0x4000, 8).with_sources(&[0]).with_destination(0, 0x4010u64);
        assert_eq!(ctx.infer(&load), AddressingMode::Simple);
    }

    #[test]
    fn unknown_old_value_still_allows_post_index() {
        // Before the first write to X0, replay has no old value; the
        // heuristic stays permissive (best effort, as in the paper).
        let ctx = InferenceContext::new();
        let load =
            CvpInstruction::load(4, 0x4000, 8).with_sources(&[0]).with_destination(0, 0x4010u64);
        assert_eq!(ctx.infer(&load), AddressingMode::PostIndex { base: 0 });
    }

    #[test]
    fn store_with_base_update_is_inferred() {
        // STR X1, [X0, #16]! — stores carry the updated base as their only
        // destination.
        let ctx = ctx_with(0, 0x5000);
        let store = CvpInstruction::store(4, 0x5010, 8)
            .with_sources(&[1, 0])
            .with_destination(0, 0x5010u64);
        assert_eq!(ctx.infer(&store), AddressingMode::PreIndex { base: 0 });
    }

    #[test]
    fn vector_destination_cannot_be_base() {
        let ctx = InferenceContext::new();
        let load = CvpInstruction::load(4, 0x100, 16)
            .with_sources(&[33])
            .with_destination(33, cvp_trace::OutputValue::vector(0x100, 1));
        assert_eq!(ctx.infer(&load), AddressingMode::Simple);
    }

    #[test]
    fn non_memory_instruction_is_simple() {
        let ctx = InferenceContext::new();
        let alu = CvpInstruction::alu(0).with_sources(&[1]).with_destination(1, 0u64);
        assert_eq!(ctx.infer(&alu), AddressingMode::Simple);
    }

    #[test]
    fn base_register_accessor() {
        assert_eq!(AddressingMode::Simple.base_register(), None);
        assert_eq!(AddressingMode::PreIndex { base: 3 }.base_register(), Some(3));
        assert!(AddressingMode::PostIndex { base: 3 }.updates_base());
    }
}
