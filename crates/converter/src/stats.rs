use std::fmt;

use crate::improvements::{Improvement, ImprovementSet};

/// Counters accumulated while converting one trace.
///
/// These back the paper's §4.2 discussion (how many instructions each
/// improvement touches) and the x-axes of Figures 3–5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// CVP-1 instructions consumed.
    pub input_instructions: u64,
    /// ChampSim records emitted (larger than the input when `base-update`
    /// splits instructions).
    pub output_records: u64,
    /// Memory instructions with no destination register in the CVP-1
    /// trace (prefetch loads, plain stores) — where the original converter
    /// invents an `X0` destination.
    pub memory_no_destination: u64,
    /// Loads with more than one destination register in the CVP-1 trace —
    /// where the original converter drops all but the first.
    pub loads_multiple_destinations: u64,
    /// Loads inferred to perform a base-register update.
    pub base_update_loads: u64,
    /// Stores inferred to perform a base-register update.
    pub base_update_stores: u64,
    /// Of the base updates, how many were pre-indexing.
    pub pre_index: u64,
    /// Of the base updates, how many were post-indexing.
    pub post_index: u64,
    /// Memory accesses whose footprint spans two cachelines.
    pub two_cacheline_accesses: u64,
    /// 64-byte stores treated as `DC ZVA` (cacheline-aligned zeroing).
    pub dc_zva_stores: u64,
    /// Unconditional branches that read **and** write X30 — misclassified
    /// as returns by the original converter, fixed by `call-stack`.
    pub x30_read_write_branches: u64,
    /// Branches emitted as returns.
    pub returns_emitted: u64,
    /// Branches emitted as calls (direct or indirect).
    pub calls_emitted: u64,
    /// Conditional branches that carried a real source register (the ones
    /// `branch-regs` rewires away from the flags register).
    pub conditional_with_sources: u64,
    /// ALU/FP instructions that received the flags register as destination
    /// under `flag-reg`.
    pub flag_destinations_added: u64,
    /// Calls whose X30 destination could not be conveyed (ChampSim's
    /// two-destination limit; §3.2.2's known limitation).
    pub x30_destinations_dropped: u64,
    /// Source registers dropped because a record ran out of slots.
    pub source_registers_dropped: u64,
}

impl ConversionStats {
    /// Creates zeroed statistics.
    pub fn new() -> ConversionStats {
        ConversionStats::default()
    }

    /// All loads and stores inferred to update their base register.
    pub fn base_update_total(&self) -> u64 {
        self.base_update_loads + self.base_update_stores
    }

    /// Fraction of input instructions that are base-updating loads — the
    /// x-axis of the paper's Figure 4.
    pub fn base_update_load_fraction(&self) -> f64 {
        fraction(self.base_update_loads, self.input_instructions)
    }

    /// Fraction of input instructions that access two cachelines (the
    /// paper reports 0.3% on the public suite).
    pub fn two_cacheline_fraction(&self) -> f64 {
        fraction(self.two_cacheline_accesses, self.input_instructions)
    }

    /// Fraction of input instructions that are memory operations without
    /// a destination (the paper reports 9.4%).
    pub fn memory_no_destination_fraction(&self) -> f64 {
        fraction(self.memory_no_destination, self.input_instructions)
    }

    /// Fraction of input instructions that are multi-destination loads
    /// (the paper reports 5.2%).
    pub fn loads_multiple_destinations_fraction(&self) -> f64 {
        fraction(self.loads_multiple_destinations, self.input_instructions)
    }

    /// How many input instructions `improvement` rewrites, derived from
    /// the per-phenomenon counters (the paper's §4.2 "how much each
    /// improvement touches" question).
    pub fn rewrites(&self, improvement: Improvement) -> u64 {
        match improvement {
            Improvement::MemRegs => self.memory_no_destination + self.loads_multiple_destinations,
            Improvement::BaseUpdate => self.base_update_total(),
            Improvement::MemFootprint => self.two_cacheline_accesses + self.dc_zva_stores,
            Improvement::CallStack => self.x30_read_write_branches,
            Improvement::BranchRegs => self.conditional_with_sources,
            Improvement::FlagReg => self.flag_destinations_added,
        }
    }

    /// Registers every counter under `converter.*`, plus one
    /// `converter.improvement.{name}.rewrites` instance per improvement
    /// in `enabled`.
    pub fn export(&self, enabled: ImprovementSet, registry: &mut telemetry::Registry) {
        use telemetry::catalog;
        registry.counter(&catalog::CONVERTER_INPUT_INSTRUCTIONS, self.input_instructions);
        registry.counter(&catalog::CONVERTER_OUTPUT_RECORDS, self.output_records);
        let expansion = if self.input_instructions == 0 {
            0.0
        } else {
            self.output_records as f64 / self.input_instructions as f64
        };
        registry.gauge(&catalog::CONVERTER_EXPANSION_RATIO, expansion);
        registry.counter(&catalog::CONVERTER_MEMORY_NO_DESTINATION, self.memory_no_destination);
        registry.counter(&catalog::CONVERTER_LOADS_MULTI_DEST, self.loads_multiple_destinations);
        registry.counter(&catalog::CONVERTER_BASE_UPDATE_LOADS, self.base_update_loads);
        registry.counter(&catalog::CONVERTER_BASE_UPDATE_STORES, self.base_update_stores);
        registry.counter(&catalog::CONVERTER_PRE_INDEX, self.pre_index);
        registry.counter(&catalog::CONVERTER_POST_INDEX, self.post_index);
        registry.counter(&catalog::CONVERTER_TWO_CACHELINE, self.two_cacheline_accesses);
        registry.counter(&catalog::CONVERTER_DC_ZVA_STORES, self.dc_zva_stores);
        registry.counter(&catalog::CONVERTER_X30_READ_WRITE, self.x30_read_write_branches);
        registry.counter(&catalog::CONVERTER_RETURNS_EMITTED, self.returns_emitted);
        registry.counter(&catalog::CONVERTER_CALLS_EMITTED, self.calls_emitted);
        registry.counter(&catalog::CONVERTER_COND_WITH_SOURCES, self.conditional_with_sources);
        registry.counter(&catalog::CONVERTER_FLAG_DESTS_ADDED, self.flag_destinations_added);
        registry.counter(&catalog::CONVERTER_X30_DESTS_DROPPED, self.x30_destinations_dropped);
        registry.counter(&catalog::CONVERTER_SRC_REGS_DROPPED, self.source_registers_dropped);
        for improvement in enabled.iter() {
            registry.counter_at(
                &catalog::CONVERTER_IMPROVEMENT_REWRITES,
                improvement.name(),
                self.rewrites(improvement),
            );
        }
    }

    /// Size of the fixed binary encoding used by [`Self::to_bytes`].
    pub const ENCODED_BYTES: usize = 17 * 8;

    /// All counters in a fixed order (the encoding contract of
    /// [`Self::to_bytes`] / [`Self::from_bytes`]).
    fn to_array(self) -> [u64; 17] {
        [
            self.input_instructions,
            self.output_records,
            self.memory_no_destination,
            self.loads_multiple_destinations,
            self.base_update_loads,
            self.base_update_stores,
            self.pre_index,
            self.post_index,
            self.two_cacheline_accesses,
            self.dc_zva_stores,
            self.x30_read_write_branches,
            self.returns_emitted,
            self.calls_emitted,
            self.conditional_with_sources,
            self.flag_destinations_added,
            self.x30_destinations_dropped,
            self.source_registers_dropped,
        ]
    }

    /// Fixed little-endian encoding, used when conversions are spilled
    /// to disk alongside their record buffers.
    pub fn to_bytes(self) -> [u8; Self::ENCODED_BYTES] {
        let mut out = [0u8; Self::ENCODED_BYTES];
        for (slot, v) in out.chunks_exact_mut(8).zip(self.to_array()) {
            slot.copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8; Self::ENCODED_BYTES]) -> ConversionStats {
        let mut fields = [0u64; 17];
        for (field, chunk) in fields.iter_mut().zip(bytes.chunks_exact(8)) {
            *field = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        let [input_instructions, output_records, memory_no_destination, loads_multiple_destinations, base_update_loads, base_update_stores, pre_index, post_index, two_cacheline_accesses, dc_zva_stores, x30_read_write_branches, returns_emitted, calls_emitted, conditional_with_sources, flag_destinations_added, x30_destinations_dropped, source_registers_dropped] =
            fields;
        ConversionStats {
            input_instructions,
            output_records,
            memory_no_destination,
            loads_multiple_destinations,
            base_update_loads,
            base_update_stores,
            pre_index,
            post_index,
            two_cacheline_accesses,
            dc_zva_stores,
            x30_read_write_branches,
            returns_emitted,
            calls_emitted,
            conditional_with_sources,
            flag_destinations_added,
            x30_destinations_dropped,
            source_registers_dropped,
        }
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &ConversionStats) {
        self.input_instructions += other.input_instructions;
        self.output_records += other.output_records;
        self.memory_no_destination += other.memory_no_destination;
        self.loads_multiple_destinations += other.loads_multiple_destinations;
        self.base_update_loads += other.base_update_loads;
        self.base_update_stores += other.base_update_stores;
        self.pre_index += other.pre_index;
        self.post_index += other.post_index;
        self.two_cacheline_accesses += other.two_cacheline_accesses;
        self.dc_zva_stores += other.dc_zva_stores;
        self.x30_read_write_branches += other.x30_read_write_branches;
        self.returns_emitted += other.returns_emitted;
        self.calls_emitted += other.calls_emitted;
        self.conditional_with_sources += other.conditional_with_sources;
        self.flag_destinations_added += other.flag_destinations_added;
        self.x30_destinations_dropped += other.x30_destinations_dropped;
        self.source_registers_dropped += other.source_registers_dropped;
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for ConversionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input instructions        {:>12}", self.input_instructions)?;
        writeln!(f, "output records            {:>12}", self.output_records)?;
        writeln!(
            f,
            "memory w/o destination    {:>12} ({})",
            self.memory_no_destination,
            telemetry::format::percent(self.memory_no_destination_fraction())
        )?;
        writeln!(
            f,
            "multi-destination loads   {:>12} ({})",
            self.loads_multiple_destinations,
            telemetry::format::percent(self.loads_multiple_destinations_fraction())
        )?;
        writeln!(
            f,
            "base-update loads/stores  {:>12}/{} (pre {}, post {})",
            self.base_update_loads, self.base_update_stores, self.pre_index, self.post_index
        )?;
        writeln!(
            f,
            "two-cacheline accesses    {:>12} ({})",
            self.two_cacheline_accesses,
            telemetry::format::percent(self.two_cacheline_fraction())
        )?;
        writeln!(f, "dc-zva stores             {:>12}", self.dc_zva_stores)?;
        writeln!(f, "x30 read+write branches   {:>12}", self.x30_read_write_branches)?;
        writeln!(
            f,
            "calls/returns emitted     {:>12}/{}",
            self.calls_emitted, self.returns_emitted
        )?;
        writeln!(f, "cond branches w/ sources  {:>12}", self.conditional_with_sources)?;
        writeln!(f, "flag destinations added   {:>12}", self.flag_destinations_added)?;
        write!(f, "x30 call dests dropped    {:>12}", self.x30_destinations_dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_handle_zero_denominator() {
        let s = ConversionStats::new();
        assert_eq!(s.base_update_load_fraction(), 0.0);
        assert_eq!(s.two_cacheline_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a =
            ConversionStats { input_instructions: 10, base_update_loads: 2, ..Default::default() };
        let b =
            ConversionStats { input_instructions: 30, base_update_loads: 6, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.input_instructions, 40);
        assert_eq!(a.base_update_loads, 8);
        assert!((a.base_update_load_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(ConversionStats::new().to_string().contains("input instructions"));
    }

    #[test]
    fn byte_encoding_round_trips_every_field() {
        // Distinct value per field so a swapped pair cannot cancel out.
        let mut fields = [0u64; 17];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = 1 + (i as u64) * 1_000_003;
        }
        let mut stats = ConversionStats::new();
        [
            &mut stats.input_instructions,
            &mut stats.output_records,
            &mut stats.memory_no_destination,
            &mut stats.loads_multiple_destinations,
            &mut stats.base_update_loads,
            &mut stats.base_update_stores,
            &mut stats.pre_index,
            &mut stats.post_index,
            &mut stats.two_cacheline_accesses,
            &mut stats.dc_zva_stores,
            &mut stats.x30_read_write_branches,
            &mut stats.returns_emitted,
            &mut stats.calls_emitted,
            &mut stats.conditional_with_sources,
            &mut stats.flag_destinations_added,
            &mut stats.x30_destinations_dropped,
            &mut stats.source_registers_dropped,
        ]
        .into_iter()
        .zip(fields)
        .for_each(|(slot, v)| *slot = v);
        let back = ConversionStats::from_bytes(&stats.to_bytes());
        assert_eq!(back, stats);
    }

    #[test]
    fn export_registers_rewrites_per_enabled_improvement() {
        let stats = ConversionStats {
            input_instructions: 100,
            output_records: 110,
            base_update_loads: 7,
            base_update_stores: 3,
            flag_destinations_added: 5,
            ..Default::default()
        };
        let enabled = ImprovementSet::only(Improvement::BaseUpdate).with(Improvement::FlagReg);
        let mut registry = telemetry::Registry::new();
        stats.export(enabled, &mut registry);
        assert_eq!(registry.counter_value("converter.improvement.base-update.rewrites"), 10);
        assert_eq!(registry.counter_value("converter.improvement.flag-reg.rewrites"), 5);
        assert!(registry.get("converter.improvement.mem-regs.rewrites").is_none());
        assert_eq!(registry.counter_value("converter.input_instructions"), 100);
    }
}
