use champsim_trace::{regs, ChampsimRecord};
use cvp_trace::{CvpClass, CvpInstruction, Reg, LINK_REG};

use crate::addrmode::{AddressingMode, InferenceContext};
use crate::improvements::{Improvement, ImprovementSet};
use crate::stats::ConversionStats;

/// Cacheline size assumed by the footprint logic, in bytes.
const CACHELINE: u64 = 64;

/// Aarch64 register the original converter used as a stand-in destination
/// for destination-less instructions.
const X0: Reg = 0;

/// The result of converting one CVP-1 instruction: one ChampSim record,
/// or two when the `base-update` improvement splits the instruction into
/// an ALU micro-op plus the memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Converted {
    records: [ChampsimRecord; 2],
    len: usize,
}

impl Converted {
    fn one(rec: ChampsimRecord) -> Converted {
        Converted { records: [rec, ChampsimRecord::default()], len: 1 }
    }

    fn two(first: ChampsimRecord, second: ChampsimRecord) -> Converted {
        Converted { records: [first, second], len: 2 }
    }

    /// The emitted records, in trace order.
    pub fn records(&self) -> &[ChampsimRecord] {
        &self.records[..self.len]
    }
}

impl IntoIterator for Converted {
    type Item = ChampsimRecord;
    type IntoIter = std::iter::Take<std::array::IntoIter<ChampsimRecord, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter().take(self.len)
    }
}

/// Streaming CVP-1 → ChampSim converter.
///
/// A `Converter` carries the replayed register file (for addressing-mode
/// inference) and accumulated [`ConversionStats`] across calls, so one
/// instance must be used per input trace, feeding instructions in order.
///
/// With [`ImprovementSet::none`] the behaviour reproduces the *original*
/// `cvp2champsim`, bugs included: a single forced destination register
/// (inventing `X0` where none exists), dropped branch source registers, a
/// synthetic "reads other" marker on indirect branches, and X30
/// read+write branches classified as returns.
#[derive(Debug, Clone, Default)]
pub struct Converter {
    improvements: ImprovementSet,
    ctx: InferenceContext,
    stats: ConversionStats,
}

impl Converter {
    /// Creates a converter applying `improvements`.
    pub fn new(improvements: ImprovementSet) -> Converter {
        Converter { improvements, ctx: InferenceContext::new(), stats: ConversionStats::new() }
    }

    /// The enabled improvement set.
    pub fn improvements(&self) -> ImprovementSet {
        self.improvements
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ConversionStats {
        &self.stats
    }

    /// Clears the replayed register state and statistics, keeping the
    /// improvement set; use before converting another trace.
    pub fn reset(&mut self) {
        self.ctx = InferenceContext::new();
        self.stats = ConversionStats::new();
    }

    /// Converts one instruction, producing one or two ChampSim records.
    pub fn convert(&mut self, insn: &CvpInstruction) -> Converted {
        self.stats.input_instructions += 1;
        let out = if insn.is_branch() {
            Converted::one(self.convert_branch(insn))
        } else if insn.is_memory() {
            self.convert_memory(insn)
        } else {
            Converted::one(self.convert_compute(insn))
        };
        self.ctx.commit(insn);
        self.stats.output_records += out.len as u64;
        out
    }

    /// Converts a whole instruction stream into an in-memory record list.
    pub fn convert_all<'a, I>(&mut self, insns: I) -> Vec<ChampsimRecord>
    where
        I: IntoIterator<Item = &'a CvpInstruction>,
    {
        let mut out = Vec::new();
        self.convert_into(insns, &mut out);
        out
    }

    /// Converts a whole instruction stream, appending the records to a
    /// caller-owned buffer. Lets callers build shared (`Arc<[_]>`)
    /// buffers or reuse allocations across traces without an extra copy.
    pub fn convert_into<'a, I>(&mut self, insns: I, out: &mut Vec<ChampsimRecord>)
    where
        I: IntoIterator<Item = &'a CvpInstruction>,
    {
        for insn in insns {
            out.extend(self.convert(insn));
        }
    }

    /// Converts an instruction stream lazily, yielding records as they
    /// are produced. Feeding this into `Simulator::run_iter` simulates a
    /// trace without ever materializing the record buffer.
    pub fn stream<'a, I>(&'a mut self, insns: I) -> impl Iterator<Item = ChampsimRecord> + 'a
    where
        I: IntoIterator<Item = &'a CvpInstruction>,
        I::IntoIter: 'a,
    {
        insns.into_iter().flat_map(move |insn| self.convert(insn))
    }

    // ------------------------------------------------------------------
    // Branches (§3.2)
    // ------------------------------------------------------------------

    fn convert_branch(&mut self, insn: &CvpInstruction) -> ChampsimRecord {
        let on = |imp| self.improvements.contains(imp);
        let mut rec = ChampsimRecord::new(insn.pc);
        rec.set_branch(true);
        rec.set_branch_taken(insn.taken);
        rec.add_destination_register(regs::INSTRUCTION_POINTER);

        if insn.class == CvpClass::CondBranch {
            rec.add_source_register(regs::INSTRUCTION_POINTER);
            let keep_sources = on(Improvement::BranchRegs) && !insn.sources().is_empty();
            if keep_sources {
                // cb(n)z / tb(n)z: the branch tests a general-purpose
                // register, so convey that dependency instead of flags.
                self.stats.conditional_with_sources += 1;
                self.add_arch_sources(&mut rec, insn.sources());
            } else {
                // Flag-reading conditional (or `branch-regs` disabled):
                // depend on the flags register, as x86 semantics dictate.
                rec.add_source_register(regs::FLAGS);
            }
            return rec;
        }

        // Unconditional branches: refine jump/call/return from X30 usage.
        let reads_x30 = insn.reads(LINK_REG);
        let writes_x30 = insn.writes(LINK_REG);
        if reads_x30 && writes_x30 {
            self.stats.x30_read_write_branches += 1;
        }
        let is_return = if on(Improvement::CallStack) {
            // §3.2.1: a return reads X30 and writes nothing at all.
            reads_x30 && insn.destinations().is_empty()
        } else {
            // Original bug: any X30-reading branch is a return, even
            // `blr x30`, which is an indirect call.
            reads_x30
        };
        let indirect = insn.class == CvpClass::UncondIndirectBranch;

        if is_return {
            self.stats.returns_emitted += 1;
            rec.add_source_register(regs::STACK_POINTER);
            rec.add_destination_register(regs::STACK_POINTER);
        } else if writes_x30 {
            // A call. ChampSim's two destination slots are consumed by
            // IP and SP, so the X30 destination cannot be conveyed
            // (the §3.2.2 known limitation).
            self.stats.calls_emitted += 1;
            self.stats.x30_destinations_dropped += 1;
            rec.add_source_register(regs::STACK_POINTER);
            rec.add_destination_register(regs::STACK_POINTER);
            if indirect {
                self.add_indirect_operands(&mut rec, insn);
            } else {
                rec.add_source_register(regs::INSTRUCTION_POINTER);
            }
        } else if indirect {
            self.add_indirect_operands(&mut rec, insn);
        } else {
            rec.add_source_register(regs::INSTRUCTION_POINTER);
        }
        rec
    }

    /// Attaches the register operands of an indirect jump or call: either
    /// the real CVP-1 sources (`branch-regs`) or the synthetic marker the
    /// original converter used to trip ChampSim's *reads other* test.
    fn add_indirect_operands(&mut self, rec: &mut ChampsimRecord, insn: &CvpInstruction) {
        let real = self.improvements.contains(Improvement::BranchRegs);
        if real && !insn.sources().is_empty() {
            self.add_arch_sources(rec, insn.sources());
        } else {
            rec.add_source_register(regs::READS_OTHER_MARKER);
        }
    }

    // ------------------------------------------------------------------
    // Memory instructions (§3.1)
    // ------------------------------------------------------------------

    fn convert_memory(&mut self, insn: &CvpInstruction) -> Converted {
        let imps = self.improvements;
        let on = |imp| imps.contains(imp);
        if insn.destinations().is_empty() {
            self.stats.memory_no_destination += 1;
        }
        if insn.class == CvpClass::Load && insn.destinations().len() > 1 {
            self.stats.loads_multiple_destinations += 1;
        }

        // Addressing-mode inference runs unconditionally so statistics
        // (e.g. Figure 4's x-axis) are available even for baseline runs;
        // the result only alters the output when the improvements are on.
        let mode = self.ctx.infer(insn);
        if mode.updates_base() {
            match insn.class {
                CvpClass::Load => self.stats.base_update_loads += 1,
                _ => self.stats.base_update_stores += 1,
            }
            match mode {
                AddressingMode::PreIndex { .. } => self.stats.pre_index += 1,
                AddressingMode::PostIndex { .. } => self.stats.post_index += 1,
                AddressingMode::Simple => {}
            }
        }
        let split_base = if on(Improvement::BaseUpdate) { mode.base_register() } else { None };

        // Destination registers of the memory record: everything the
        // trace lists, minus the base when it is split out. Collected
        // into a stack buffer — this runs once per memory instruction.
        let mut dest_buf = [0 as Reg; cvp_trace::MAX_DSTS];
        let mut dest_len = 0usize;
        for &d in insn.destinations() {
            if Some(d) != split_base {
                dest_buf[dest_len] = d;
                dest_len += 1;
            }
        }
        let mem_dests = &dest_buf[..dest_len];

        let mut mem = ChampsimRecord::new(insn.pc);
        // Source registers: the real ones. The original converter
        // additionally echoed every destination register into the source
        // list for read-modify-write-shaped memory instructions (a
        // source that is also a destination — base updates and the load
        // pairs of the paper's §3.1 example). The echo is what makes the
        // paper's example `LDR X1, [X0, #12]!` read both X0 and X1, and
        // it serializes consecutive base-update loads on the previous
        // load's *data* — the hidden cost the `base-update` improvement
        // removes.
        self.add_arch_sources(&mut mem, insn.sources());
        let rmw_shaped = insn.sources().iter().any(|&s| insn.writes(s));
        if !on(Improvement::MemRegs) && split_base.is_none() && rmw_shaped {
            for &d in insn.destinations() {
                mem.add_source_register(regs::arch(d));
            }
        }

        // Destination registers.
        if on(Improvement::MemRegs) {
            for &d in mem_dests {
                // ChampSim records have two destination slots; overflow
                // (e.g. LDP with base update under a disabled
                // base-update) keeps the first two, as in the paper.
                mem.add_destination_register(regs::arch(d));
            }
        } else {
            // Original behaviour: exactly one destination, inventing X0.
            match mem_dests.first() {
                Some(&d) => {
                    mem.add_destination_register(regs::arch(d));
                }
                None => {
                    mem.add_destination_register(regs::arch(X0));
                }
            }
        }

        // Memory addresses (§3.1.3).
        let (lines, zva) = self.footprint(insn, mem_dests, mode);
        if zva {
            self.stats.dc_zva_stores += 1;
        }
        if lines.1.is_some() {
            self.stats.two_cacheline_accesses += 1;
        }
        let addresses = [Some(lines.0), lines.1];
        for address in addresses.into_iter().flatten() {
            // Address 0 marks an empty slot in the record; a (synthetic)
            // access to page zero is nudged into the line's second word
            // so the record stays a load/store.
            let address = if address == 0 { 8 } else { address };
            if insn.class == CvpClass::Load {
                mem.add_source_memory(address);
            } else {
                mem.add_destination_memory(address);
            }
        }

        // Base-update split (§3.1.2): emit the ALU bump and the access as
        // two records at PC and PC+2, ordered by the indexing mode.
        if let Some(base) = split_base {
            let mut alu = ChampsimRecord::new(insn.pc);
            alu.add_source_register(regs::arch(base));
            alu.add_destination_register(regs::arch(base));
            match mode {
                AddressingMode::PreIndex { .. } => {
                    mem.set_ip(insn.pc.wrapping_add(2));
                    return Converted::two(alu, mem);
                }
                _ => {
                    alu.set_ip(insn.pc.wrapping_add(2));
                    return Converted::two(mem, alu);
                }
            }
        }
        Converted::one(mem)
    }

    /// Computes the cacheline(s) touched by a memory instruction and
    /// whether it is a `DC ZVA` store.
    ///
    /// Returns `((first_line_address, second_line_address), is_dc_zva)`.
    /// Without `mem-footprint` this is always the raw effective address
    /// and no second line, reproducing the original converter.
    fn footprint(
        &self,
        insn: &CvpInstruction,
        mem_dests: &[Reg],
        mode: AddressingMode,
    ) -> ((u64, Option<u64>), bool) {
        if !self.improvements.contains(Improvement::MemFootprint) {
            return ((insn.mem_address, None), false);
        }
        let ea = insn.mem_address;
        if insn.class == CvpClass::Store && insn.mem_size == 64 {
            // DC ZVA zeroes one naturally aligned cacheline; align the
            // address so exactly one line is touched (§3.1.3).
            return ((ea & !(CACHELINE - 1), None), true);
        }
        // Total transfer size: per-register size times the number of
        // memory-populated destination registers (load pairs and vector
        // loads). A base-update destination is never populated from
        // memory, so it does not count — whether or not the
        // `base-update` improvement is splitting it out.
        let _ = mem_dests;
        let regs_from_memory = match insn.class {
            CvpClass::Load => {
                let base_dests = usize::from(mode.updates_base());
                insn.destinations().len().saturating_sub(base_dests).max(1) as u64
            }
            _ => 1,
        };
        let total = u64::from(insn.mem_size) * regs_from_memory;
        let first_line = ea / CACHELINE;
        let last_line = (ea + total.max(1) - 1) / CACHELINE;
        if last_line > first_line {
            ((ea, Some(last_line * CACHELINE)), false)
        } else {
            ((ea, None), false)
        }
    }

    // ------------------------------------------------------------------
    // Compute instructions
    // ------------------------------------------------------------------

    fn convert_compute(&mut self, insn: &CvpInstruction) -> ChampsimRecord {
        let mut rec = ChampsimRecord::new(insn.pc);
        self.add_arch_sources(&mut rec, insn.sources());
        if insn.destinations().is_empty() {
            if self.improvements.contains(Improvement::FlagReg) {
                // §3.2.3: destination-less ALU/FP instructions are flag
                // setters (cmp, tst, fcmp); make them write the flags so
                // conditional branches depend on them.
                self.stats.flag_destinations_added += 1;
                rec.add_destination_register(regs::FLAGS);
            } else {
                // Original behaviour: invent an X0 destination.
                rec.add_destination_register(regs::arch(X0));
            }
        } else if self.improvements.contains(Improvement::MemRegs) {
            for &d in insn.destinations() {
                rec.add_destination_register(regs::arch(d));
            }
        } else {
            rec.add_destination_register(regs::arch(insn.destinations()[0]));
        }
        rec
    }

    fn add_arch_sources(&mut self, rec: &mut ChampsimRecord, sources: &[Reg]) {
        for &s in sources {
            if !rec.add_source_register(regs::arch(s)) {
                // ChampSim's four source slots are full (e.g. CASP); the
                // paper drops the excess the same way.
                self.stats.source_registers_dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use champsim_trace::{BranchRules, BranchType};

    fn one(conv: &mut Converter, insn: &CvpInstruction) -> ChampsimRecord {
        let out = conv.convert(insn);
        assert_eq!(out.records().len(), 1, "expected a single record");
        out.records()[0]
    }

    fn classify(rec: &ChampsimRecord, rules: BranchRules) -> BranchType {
        rules.classify(rec)
    }

    // ------------------------------------------------------ compute ----

    #[test]
    fn original_invents_x0_for_flag_setting_alu() {
        let mut conv = Converter::new(ImprovementSet::none());
        let cmp = CvpInstruction::alu(0x10).with_sources(&[1, 2]);
        let rec = one(&mut conv, &cmp);
        assert!(rec.writes(regs::arch(X0)));
        assert!(!rec.writes(regs::FLAGS));
    }

    #[test]
    fn flag_reg_adds_flags_destination() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::FlagReg));
        let cmp = CvpInstruction::alu(0x10).with_sources(&[1, 2]);
        let rec = one(&mut conv, &cmp);
        assert!(rec.writes(regs::FLAGS));
        assert!(!rec.writes(regs::arch(X0)));
        assert_eq!(conv.stats().flag_destinations_added, 1);

        // FP compare also gets the flags (§3.2.3).
        let fcmp = CvpInstruction::fp(0x14).with_sources(&[33, 34]);
        let rec = one(&mut conv, &fcmp);
        assert!(rec.writes(regs::FLAGS));
        assert_eq!(conv.stats().flag_destinations_added, 2);
    }

    #[test]
    fn alu_with_destination_is_untouched_by_flag_reg() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::FlagReg));
        let add = CvpInstruction::alu(0).with_sources(&[1]).with_destination(2, 3u64);
        let rec = one(&mut conv, &add);
        assert!(rec.writes(regs::arch(2)));
        assert!(!rec.writes(regs::FLAGS));
        assert_eq!(conv.stats().flag_destinations_added, 0);
    }

    // ------------------------------------------------------- memory ----

    /// The paper's running example: the original converter represents
    /// `LDR X1, [X0, #8]!` as one load with sources {X0, X1}, destination
    /// {X1}, one memory source.
    #[test]
    fn original_load_reproduces_paper_example() {
        let mut conv = Converter::new(ImprovementSet::none());
        let ldr = CvpInstruction::load(0x400, 0x1008, 8)
            .with_sources(&[0])
            .with_destination(1, 0xdeadu64)
            .with_destination(0, 0x1008u64);
        let rec = one(&mut conv, &ldr);
        assert!(rec.reads(regs::arch(0)) && rec.reads(regs::arch(1)));
        assert_eq!(rec.destination_registers().collect::<Vec<_>>(), vec![regs::arch(1)]);
        assert_eq!(rec.source_memory().collect::<Vec<_>>(), vec![0x1008]);
        assert!(rec.is_load() && !rec.is_store());
    }

    #[test]
    fn original_adds_x0_to_prefetch_loads_and_stores() {
        let mut conv = Converter::new(ImprovementSet::none());
        let prefetch = CvpInstruction::load(0, 0x100, 8).with_sources(&[3]);
        assert!(one(&mut conv, &prefetch).writes(regs::arch(X0)));
        let store = CvpInstruction::store(4, 0x200, 8).with_sources(&[3, 4]);
        let rec = one(&mut conv, &store);
        assert!(rec.writes(regs::arch(X0)));
        assert!(rec.is_store());
        assert_eq!(conv.stats().memory_no_destination, 2);
    }

    #[test]
    fn mem_regs_keeps_all_and_only_trace_destinations() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::MemRegs));
        let prefetch = CvpInstruction::load(0, 0x100, 8).with_sources(&[3]);
        let rec = one(&mut conv, &prefetch);
        assert_eq!(rec.destination_registers().count(), 0);
        assert!(!rec.reads(regs::arch(X0)));

        // Load pair keeps both destinations and does not re-add them as
        // sources.
        let ldp = CvpInstruction::load(4, 0x4000, 8)
            .with_sources(&[0])
            .with_destination(1, 1u64)
            .with_destination(2, 2u64);
        let rec = one(&mut conv, &ldp);
        let dsts: Vec<u8> = rec.destination_registers().collect();
        assert_eq!(dsts, vec![regs::arch(1), regs::arch(2)]);
        assert!(rec.reads(regs::arch(0)));
        assert!(!rec.reads(regs::arch(1)));
        assert_eq!(conv.stats().loads_multiple_destinations, 1);
    }

    #[test]
    fn base_update_splits_pre_index_alu_first() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::BaseUpdate));
        // Establish X0 = 0x1000.
        conv.convert(&CvpInstruction::alu(0).with_destination(0, 0x1000u64));
        // LDR X1, [X0, #8]!
        let ldr = CvpInstruction::load(4, 0x1008, 8)
            .with_sources(&[0])
            .with_destination(1, 7u64)
            .with_destination(0, 0x1008u64);
        let out = conv.convert(&ldr);
        let recs = out.records();
        assert_eq!(recs.len(), 2);
        // First micro-op: the ALU base bump at the original PC.
        assert_eq!(recs[0].ip(), 4);
        assert!(recs[0].writes(regs::arch(0)) && recs[0].reads(regs::arch(0)));
        assert!(!recs[0].is_load() && !recs[0].is_store());
        // Second micro-op: the memory access at PC+2, not writing the base.
        assert_eq!(recs[1].ip(), 6);
        assert!(recs[1].is_load());
        assert!(!recs[1].writes(regs::arch(0)));
        assert!(recs[1].reads(regs::arch(0)));
        assert_eq!(conv.stats().base_update_loads, 1);
        assert_eq!(conv.stats().pre_index, 1);
    }

    #[test]
    fn base_update_splits_post_index_memory_first() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::BaseUpdate));
        conv.convert(&CvpInstruction::alu(0).with_destination(0, 0x2000u64));
        // LDR X1, [X0], #16
        let ldr = CvpInstruction::load(4, 0x2000, 8)
            .with_sources(&[0])
            .with_destination(1, 7u64)
            .with_destination(0, 0x2010u64);
        let out = conv.convert(&ldr);
        let recs = out.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ip(), 4);
        assert!(recs[0].is_load());
        assert_eq!(recs[1].ip(), 6);
        assert!(recs[1].writes(regs::arch(0)));
        assert_eq!(conv.stats().post_index, 1);
    }

    #[test]
    fn base_update_disabled_is_still_counted_for_statistics() {
        let mut conv = Converter::new(ImprovementSet::none());
        conv.convert(&CvpInstruction::alu(0).with_destination(0, 0x1000u64));
        let ldr = CvpInstruction::load(4, 0x1008, 8)
            .with_sources(&[0])
            .with_destination(1, 7u64)
            .with_destination(0, 0x1008u64);
        let out = conv.convert(&ldr);
        assert_eq!(out.records().len(), 1, "no split without the improvement");
        assert_eq!(conv.stats().base_update_loads, 1);
    }

    #[test]
    fn mem_footprint_adds_second_cacheline_for_crossing_access() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::MemFootprint));
        // 8-byte load at 0x103C crosses the 0x1040 line boundary.
        let ld = CvpInstruction::load(0, 0x103C, 8).with_sources(&[2]).with_destination(1, 0u64);
        let rec = one(&mut conv, &ld);
        let mem: Vec<u64> = rec.source_memory().collect();
        assert_eq!(mem, vec![0x103C, 0x1040]);
        assert_eq!(conv.stats().two_cacheline_accesses, 1);
    }

    #[test]
    fn mem_footprint_counts_load_pair_size() {
        let mut conv = Converter::new(
            ImprovementSet::only(Improvement::MemFootprint).with(Improvement::MemRegs),
        );
        // LDP at 0x1038, 2×8 bytes: touches 0x1038..0x1048 → two lines.
        let ldp = CvpInstruction::load(0, 0x1038, 8)
            .with_sources(&[0])
            .with_destination(1, 0u64)
            .with_destination(2, 0u64);
        let rec = one(&mut conv, &ldp);
        assert_eq!(rec.source_memory().count(), 2);
    }

    #[test]
    fn mem_footprint_excludes_base_register_from_size() {
        let mut conv = Converter::new(ImprovementSet::memory());
        conv.convert(&CvpInstruction::alu(0).with_destination(0, 0x1038u64));
        // Pre-index LDR X1,[X0,#0]! at the line tail: only 8 real bytes
        // (one memory destination), so no crossing despite two trace
        // destinations.
        let ldr = CvpInstruction::load(4, 0x1038, 8)
            .with_sources(&[0])
            .with_destination(1, 0u64)
            .with_destination(0, 0x1038u64);
        let out = conv.convert(&ldr);
        let mem_rec = out.records()[1];
        assert_eq!(mem_rec.source_memory().count(), 1);
        assert_eq!(conv.stats().two_cacheline_accesses, 0);
    }

    #[test]
    fn dc_zva_store_is_aligned_to_one_line() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::MemFootprint));
        let zva = CvpInstruction::store(0, 0x1234, 64).with_sources(&[5]);
        let rec = one(&mut conv, &zva);
        assert_eq!(rec.destination_memory().collect::<Vec<_>>(), vec![0x1200]);
        assert_eq!(conv.stats().dc_zva_stores, 1);
        assert_eq!(conv.stats().two_cacheline_accesses, 0);
    }

    #[test]
    fn without_mem_footprint_crossing_access_touches_one_line() {
        let mut conv = Converter::new(ImprovementSet::none());
        let ld = CvpInstruction::load(0, 0x103C, 8).with_sources(&[2]).with_destination(1, 0u64);
        let rec = one(&mut conv, &ld);
        assert_eq!(rec.source_memory().count(), 1);
        assert_eq!(conv.stats().two_cacheline_accesses, 0);
    }

    // ------------------------------------------------------ branches ---

    #[test]
    fn conditional_branch_reads_flags_under_original() {
        let mut conv = Converter::new(ImprovementSet::none());
        // cbz x5: has a real source register, dropped by the original.
        let cbz = CvpInstruction::cond_branch(0x10, true, 0x40).with_sources(&[5]);
        let rec = one(&mut conv, &cbz);
        assert!(rec.reads(regs::FLAGS));
        assert!(!rec.reads(regs::arch(5)));
        assert_eq!(classify(&rec, BranchRules::Original), BranchType::Conditional);
    }

    #[test]
    fn branch_regs_keeps_conditional_sources() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::BranchRegs));
        let cbz = CvpInstruction::cond_branch(0x10, false, 0).with_sources(&[5]);
        let rec = one(&mut conv, &cbz);
        assert!(rec.reads(regs::arch(5)));
        assert!(!rec.reads(regs::FLAGS));
        assert_eq!(conv.stats().conditional_with_sources, 1);
        // Needs the patched ChampSim to classify correctly (§3.2.2).
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::Conditional);
        assert_eq!(classify(&rec, BranchRules::Original), BranchType::Indirect);
    }

    #[test]
    fn flag_reading_conditional_keeps_flags_under_branch_regs() {
        let mut conv = Converter::new(ImprovementSet::only(Improvement::BranchRegs));
        // b.eq: no source registers in the CVP-1 trace.
        let beq = CvpInstruction::cond_branch(0x10, true, 0x40);
        let rec = one(&mut conv, &beq);
        assert!(rec.reads(regs::FLAGS));
        assert_eq!(conv.stats().conditional_with_sources, 0);
    }

    #[test]
    fn direct_branch_forms() {
        let mut conv = Converter::new(ImprovementSet::all());
        // b target
        let b = CvpInstruction::direct_branch(0x10, 0x40);
        let rec = one(&mut conv, &b);
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::DirectJump);
        // bl target (writes X30)
        let bl = CvpInstruction::direct_branch(0x14, 0x80).with_destination(LINK_REG, 0x18u64);
        let rec = one(&mut conv, &bl);
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::DirectCall);
        assert_eq!(conv.stats().x30_destinations_dropped, 1);
    }

    #[test]
    fn indirect_branch_forms() {
        let mut conv = Converter::new(ImprovementSet::all());
        // br x9
        let br = CvpInstruction::indirect_branch(0x10, 0x4000).with_sources(&[9]);
        let rec = one(&mut conv, &br);
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::Indirect);
        assert!(rec.reads(regs::arch(9)));
        assert!(!rec.reads(regs::READS_OTHER_MARKER));
        // blr x9
        let blr = CvpInstruction::indirect_branch(0x14, 0x5000)
            .with_sources(&[9])
            .with_destination(LINK_REG, 0x18u64);
        let rec = one(&mut conv, &blr);
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::IndirectCall);
        assert!(rec.reads(regs::arch(9)));
        // ret (reads x30, writes nothing)
        let ret = CvpInstruction::indirect_branch(0x18, 0x2000).with_sources(&[LINK_REG]);
        let rec = one(&mut conv, &ret);
        assert_eq!(classify(&rec, BranchRules::Patched), BranchType::Return);
    }

    #[test]
    fn original_uses_reads_other_marker_for_indirects() {
        let mut conv = Converter::new(ImprovementSet::none());
        let br = CvpInstruction::indirect_branch(0x10, 0x4000).with_sources(&[9]);
        let rec = one(&mut conv, &br);
        assert!(rec.reads(regs::READS_OTHER_MARKER));
        assert!(!rec.reads(regs::arch(9)));
        assert_eq!(classify(&rec, BranchRules::Original), BranchType::Indirect);
    }

    /// The `call-stack` bug and fix (§3.2.1): `blr x30` reads **and**
    /// writes X30. The original converter emits a return; the fix emits
    /// an indirect call.
    #[test]
    fn blr_x30_is_return_originally_and_call_when_fixed() {
        let blr_x30 = CvpInstruction::indirect_branch(0x10, 0x7000)
            .with_sources(&[LINK_REG])
            .with_destination(LINK_REG, 0x14u64);

        let mut original = Converter::new(ImprovementSet::none());
        let rec = one(&mut original, &blr_x30);
        assert_eq!(classify(&rec, BranchRules::Original), BranchType::Return);
        assert_eq!(original.stats().x30_read_write_branches, 1);
        assert_eq!(original.stats().returns_emitted, 1);

        let mut fixed = Converter::new(ImprovementSet::only(Improvement::CallStack));
        let rec = one(&mut fixed, &blr_x30);
        assert_eq!(classify(&rec, BranchRules::Original), BranchType::IndirectCall);
        assert_eq!(fixed.stats().calls_emitted, 1);
        assert_eq!(fixed.stats().returns_emitted, 0);
    }

    // ---------------------------------------------------- plumbing -----

    #[test]
    fn convert_all_flattens_splits() {
        let mut conv = Converter::new(ImprovementSet::all());
        let insns = [
            CvpInstruction::alu(0).with_destination(0, 0x1000u64),
            CvpInstruction::load(4, 0x1000, 8)
                .with_sources(&[0])
                .with_destination(1, 0u64)
                .with_destination(0, 0x1010u64),
            CvpInstruction::alu(8).with_sources(&[1]).with_destination(2, 0u64),
        ];
        let recs = conv.convert_all(insns.iter());
        assert_eq!(recs.len(), 4); // load split into two
        assert_eq!(conv.stats().input_instructions, 3);
        assert_eq!(conv.stats().output_records, 4);
    }

    #[test]
    fn reset_clears_state_but_keeps_improvements() {
        let mut conv = Converter::new(ImprovementSet::all());
        conv.convert(&CvpInstruction::alu(0).with_destination(0, 1u64));
        conv.reset();
        assert_eq!(conv.stats().input_instructions, 0);
        assert_eq!(conv.improvements(), ImprovementSet::all());
    }

    #[test]
    fn zero_effective_address_does_not_vanish() {
        let mut conv = Converter::new(ImprovementSet::none());
        let mut ld = CvpInstruction::load(0, 8, 8).with_destination(1, 0u64);
        ld.mem_address = 0;
        let rec = one(&mut conv, &ld);
        assert!(rec.is_load());
    }

    #[test]
    fn source_register_overflow_is_counted() {
        let mut conv = Converter::new(ImprovementSet::all());
        // CASP-like: six sources; ChampSim keeps four.
        let casp = CvpInstruction::store(0, 0x100, 8).with_sources(&[1, 2, 3, 4, 5, 6]);
        let rec = one(&mut conv, &casp);
        assert_eq!(rec.source_registers().count(), 4);
        assert_eq!(conv.stats().source_registers_dropped, 2);
    }
}
