//! `cvp2champsim` — the improved CVP-1 → ChampSim trace converter.
//!
//! This crate is the primary contribution of *Rebasing Microarchitectural
//! Research with Industry Traces* (IISWC 2023). The original converter
//! shipped with ChampSim was written for front-end studies and takes
//! shortcuts that distort back-end behaviour; this implementation
//! reproduces both the original behaviour (so the paper's baseline can be
//! regenerated) and the six improvements of the paper's Table 1, each
//! individually toggleable:
//!
//! | Improvement | Section | Effect |
//! |---|---|---|
//! | [`Improvement::MemRegs`] | §3.1.1 | keep all (and only) the CVP-1 destination registers of memory instructions |
//! | [`Improvement::BaseUpdate`] | §3.1.2 | split base-updating loads/stores so the base register is ready at ALU latency |
//! | [`Improvement::MemFootprint`] | §3.1.3 | touch every cacheline the instruction accesses; align `DC ZVA` stores |
//! | [`Improvement::CallStack`] | §3.2.1 | classify X30 read+write branches as calls, not returns |
//! | [`Improvement::BranchRegs`] | §3.2.2 | keep the real source registers of branches |
//! | [`Improvement::FlagReg`] | §3.2.3 | make flag-setting ALU/FP instructions write the flags register |
//!
//! # Data flow
//!
//! ```text
//!   CvpInstruction ──► Converter::convert ──► [ChampsimRecord; 1..=2]
//!                          │    (ImprovementSet gates each rewrite)
//!                          ▼
//!                   ConversionStats ──► telemetry (convert.*)
//! ```
//!
//! # Example
//!
//! ```
//! use converter::{Converter, ImprovementSet};
//! use cvp_trace::CvpInstruction;
//!
//! // A pre-indexing load: LDR X1, [X0, #8]!  (X0 <- 0x1008, X1 <- data)
//! let load = CvpInstruction::load(0x400, 0x1008, 8)
//!     .with_sources(&[0])
//!     .with_destination(1, 0xdeadu64)
//!     .with_destination(0, 0x1008u64);
//!
//! let mut original = Converter::new(ImprovementSet::none());
//! assert_eq!(original.convert(&load).records().len(), 1);
//!
//! let mut improved = Converter::new(ImprovementSet::all());
//! // base-update splits the load into an ALU update plus the access.
//! assert_eq!(improved.convert(&load).records().len(), 2);
//! ```

mod addrmode;
mod convert;
mod improvements;
mod stats;

pub use addrmode::{AddressingMode, InferenceContext, BASE_UPDATE_IMMEDIATE_WINDOW};
pub use convert::{Converted, Converter};
pub use improvements::{Improvement, ImprovementSet, ParseImprovementError};
pub use stats::ConversionStats;
