use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One of the six conversion improvements of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Improvement {
    /// §3.1.1 — keep all (and only) the destination registers the CVP-1
    /// trace gives to memory instructions, instead of forcing exactly one.
    MemRegs,
    /// §3.1.2 — infer base-updating addressing modes and split such
    /// loads/stores into an ALU micro-op plus the memory access, making
    /// the base register available at ALU latency.
    BaseUpdate,
    /// §3.1.3 — compute the real transfer size and touch the second
    /// cacheline of crossing accesses; align `DC ZVA` 64-byte stores.
    MemFootprint,
    /// §3.2.1 — classify branches that both read and write X30 as calls;
    /// only X30-reading, nothing-writing branches are returns.
    CallStack,
    /// §3.2.2 — convey the branches' real source registers instead of the
    /// synthetic "reads other" marker / flags-only pattern.
    BranchRegs,
    /// §3.2.3 — add the flags register as destination of ALU/FP
    /// instructions that have no destination, restoring the dependency of
    /// flag-reading conditional branches.
    FlagReg,
}

impl Improvement {
    /// All improvements, in Table 1 order.
    pub const ALL: [Improvement; 6] = [
        Improvement::MemRegs,
        Improvement::BaseUpdate,
        Improvement::MemFootprint,
        Improvement::CallStack,
        Improvement::BranchRegs,
        Improvement::FlagReg,
    ];

    /// The paper's name for the improvement (as used in figures and the
    /// artifact's `-i` option, without the `imp_` prefix).
    pub fn name(self) -> &'static str {
        match self {
            Improvement::MemRegs => "mem-regs",
            Improvement::BaseUpdate => "base-update",
            Improvement::MemFootprint => "mem-footprint",
            Improvement::CallStack => "call-stack",
            Improvement::BranchRegs => "branch-regs",
            Improvement::FlagReg => "flag-reg",
        }
    }

    /// `true` for the three memory-side improvements.
    pub fn is_memory(self) -> bool {
        matches!(self, Improvement::MemRegs | Improvement::BaseUpdate | Improvement::MemFootprint)
    }

    /// `true` for the three branch-side improvements.
    pub fn is_branch(self) -> bool {
        !self.is_memory()
    }

    fn bit(self) -> u8 {
        match self {
            Improvement::MemRegs => 1 << 0,
            Improvement::BaseUpdate => 1 << 1,
            Improvement::MemFootprint => 1 << 2,
            Improvement::CallStack => 1 << 3,
            Improvement::BranchRegs => 1 << 4,
            Improvement::FlagReg => 1 << 5,
        }
    }
}

impl fmt::Display for Improvement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of enabled conversion improvements.
///
/// The empty set reproduces the **original** `cvp2champsim` behaviour
/// (the paper's baseline); [`ImprovementSet::all`] is the paper's
/// `All_imps` configuration. String parsing accepts the artifact's CLI
/// spellings: `No_imp`, `All_imps`, `Memory_imps`, `Branch_imps`, and
/// `imp_<name>` (or the bare name) for individual improvements.
///
/// # Example
///
/// ```
/// use converter::{Improvement, ImprovementSet};
///
/// let set: ImprovementSet = "Memory_imps".parse()?;
/// assert!(set.contains(Improvement::BaseUpdate));
/// assert!(!set.contains(Improvement::FlagReg));
/// # Ok::<(), converter::ParseImprovementError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ImprovementSet(u8);

impl ImprovementSet {
    /// The empty set: the original converter (`No_imp`).
    pub const fn none() -> ImprovementSet {
        ImprovementSet(0)
    }

    /// Every improvement enabled (`All_imps`).
    pub const fn all() -> ImprovementSet {
        ImprovementSet(0b11_1111)
    }

    /// The three memory improvements (`Memory_imps`).
    pub const fn memory() -> ImprovementSet {
        ImprovementSet(0b00_0111)
    }

    /// The three branch improvements (`Branch_imps`).
    pub const fn branch() -> ImprovementSet {
        ImprovementSet(0b11_1000)
    }

    /// A single improvement.
    pub fn only(imp: Improvement) -> ImprovementSet {
        ImprovementSet(imp.bit())
    }

    /// Membership test.
    pub fn contains(self, imp: Improvement) -> bool {
        self.0 & imp.bit() != 0
    }

    /// This set plus `imp`.
    #[must_use]
    pub fn with(self, imp: Improvement) -> ImprovementSet {
        ImprovementSet(self.0 | imp.bit())
    }

    /// This set minus `imp`.
    #[must_use]
    pub fn without(self, imp: Improvement) -> ImprovementSet {
        ImprovementSet(self.0 & !imp.bit())
    }

    /// `true` when no improvement is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the enabled improvements in Table 1 order.
    pub fn iter(self) -> impl Iterator<Item = Improvement> {
        Improvement::ALL.into_iter().filter(move |i| self.contains(*i))
    }
}

impl FromIterator<Improvement> for ImprovementSet {
    fn from_iter<T: IntoIterator<Item = Improvement>>(iter: T) -> Self {
        iter.into_iter().fold(ImprovementSet::none(), ImprovementSet::with)
    }
}

impl Extend<Improvement> for ImprovementSet {
    fn extend<T: IntoIterator<Item = Improvement>>(&mut self, iter: T) {
        for imp in iter {
            *self = self.with(imp);
        }
    }
}

impl fmt::Display for ImprovementSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("No_imp");
        }
        if *self == ImprovementSet::all() {
            return f.write_str("All_imps");
        }
        if *self == ImprovementSet::memory() {
            return f.write_str("Memory_imps");
        }
        if *self == ImprovementSet::branch() {
            return f.write_str("Branch_imps");
        }
        let mut first = true;
        for imp in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{imp}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error returned when parsing an improvement name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseImprovementError {
    input: String,
}

impl fmt::Display for ParseImprovementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown improvement {:?}; expected No_imp, All_imps, Memory_imps, Branch_imps, \
             or imp_<mem-regs|base-update|mem-footprint|call-stack|branch-regs|flag-reg>",
            self.input
        )
    }
}

impl Error for ParseImprovementError {}

impl FromStr for Improvement {
    type Err = ParseImprovementError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let name = s.strip_prefix("imp_").unwrap_or(s);
        // The artifact spells the last one "imp_flag-regs"; accept both.
        let name = if name == "flag-regs" { "flag-reg" } else { name };
        Improvement::ALL
            .into_iter()
            .find(|i| i.name() == name)
            .ok_or_else(|| ParseImprovementError { input: s.to_owned() })
    }
}

impl FromStr for ImprovementSet {
    type Err = ParseImprovementError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "No_imp" | "none" => Ok(ImprovementSet::none()),
            "All_imps" | "all" => Ok(ImprovementSet::all()),
            "Memory_imps" | "memory" => Ok(ImprovementSet::memory()),
            "Branch_imps" | "branch" => Ok(ImprovementSet::branch()),
            other => {
                other.split('+').map(Improvement::from_str).collect::<Result<ImprovementSet, _>>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let mut s = ImprovementSet::none();
        assert!(s.is_empty());
        s = s.with(Improvement::BaseUpdate);
        assert!(s.contains(Improvement::BaseUpdate));
        assert!(!s.contains(Improvement::MemRegs));
        s = s.without(Improvement::BaseUpdate);
        assert!(s.is_empty());
    }

    #[test]
    fn memory_and_branch_partition_all() {
        let union: ImprovementSet =
            ImprovementSet::memory().iter().chain(ImprovementSet::branch().iter()).collect();
        assert_eq!(union, ImprovementSet::all());
        for imp in ImprovementSet::memory().iter() {
            assert!(imp.is_memory());
        }
        for imp in ImprovementSet::branch().iter() {
            assert!(imp.is_branch());
        }
    }

    #[test]
    fn parses_artifact_spellings() {
        assert_eq!("No_imp".parse::<ImprovementSet>().unwrap(), ImprovementSet::none());
        assert_eq!("All_imps".parse::<ImprovementSet>().unwrap(), ImprovementSet::all());
        assert_eq!("Memory_imps".parse::<ImprovementSet>().unwrap(), ImprovementSet::memory());
        assert_eq!("Branch_imps".parse::<ImprovementSet>().unwrap(), ImprovementSet::branch());
        assert_eq!(
            "imp_base-update".parse::<ImprovementSet>().unwrap(),
            ImprovementSet::only(Improvement::BaseUpdate)
        );
        assert_eq!(
            "imp_flag-regs".parse::<ImprovementSet>().unwrap(),
            ImprovementSet::only(Improvement::FlagReg)
        );
        assert_eq!(
            "mem-regs+call-stack".parse::<ImprovementSet>().unwrap(),
            ImprovementSet::only(Improvement::MemRegs).with(Improvement::CallStack)
        );
        assert!("imp_bogus".parse::<ImprovementSet>().is_err());
    }

    #[test]
    fn display_round_trips() {
        let sets = [
            ImprovementSet::none(),
            ImprovementSet::all(),
            ImprovementSet::memory(),
            ImprovementSet::branch(),
            ImprovementSet::only(Improvement::CallStack),
            ImprovementSet::only(Improvement::MemRegs).with(Improvement::FlagReg),
        ];
        for s in sets {
            let text = s.to_string();
            assert_eq!(text.parse::<ImprovementSet>().unwrap(), s, "{text}");
        }
    }

    #[test]
    fn iter_is_in_table_order() {
        let names: Vec<&str> = ImprovementSet::all().iter().map(|i| i.name()).collect();
        assert_eq!(
            names,
            ["mem-regs", "base-update", "mem-footprint", "call-stack", "branch-regs", "flag-reg"]
        );
    }

    #[test]
    fn parse_error_display_mentions_input() {
        let e = "imp_nope".parse::<Improvement>().unwrap_err();
        assert!(e.to_string().contains("imp_nope"));
    }
}
