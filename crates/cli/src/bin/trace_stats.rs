//! Characterizes a CVP-1 trace: instruction mix plus the conversion
//! statistics of the improved converter.
//!
//! ```text
//! trace-stats <trace.cvp|trace.cvpz|trace.etrace> [-i <improvement>]
//!             [--metrics <path>]
//! ```
//!
//! Accepts flat `.cvp` traces, block-compressed `.cvpz` stores, and
//! packetized `.etrace` RISC-V branch traces (decoded to CVP records on
//! the fly). `--metrics` writes the `cvp.*` mix and `convert.*`
//! conversion telemetry as one JSON document, plus the `etrace.*`
//! decode counters for `.etrace` inputs (see METRICS.md).

use std::path::Path;
use std::process::ExitCode;

use converter::{Converter, ImprovementSet};
use cvp_trace::CvpTraceStats;
use trace_store::CvpTraceReader;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace-stats: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_path: Option<String> = None;
    let mut improvements = ImprovementSet::all();
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-i" | "--improvement" => {
                improvements = args.next().ok_or("-i needs an improvement name")?.parse()?;
            }
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "-h" | "--help" => {
                eprintln!(
                    "usage: trace-stats <trace.cvp|trace.cvpz|trace.etrace> [-i <improvement>] \
                     [--metrics <path>]"
                );
                return Ok(());
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let trace_path = trace_path.ok_or("missing trace path")?;
    let mut reader =
        CvpTraceReader::open(Path::new(&trace_path)).map_err(|e| format!("{trace_path}: {e}"))?;
    let mut stats = CvpTraceStats::new();
    let mut converter = Converter::new(improvements);
    let mut instructions = 0u64;
    while let Some(insn) = reader.read().map_err(|e| format!("{trace_path}: {e}"))? {
        instructions += 1;
        stats.record(&insn);
        converter.convert(&insn);
    }
    if instructions == 0 {
        return Err(format!("{trace_path}: trace contains no instructions").into());
    }
    println!("instruction mix:\n{stats}\n");
    println!("conversion ({}):\n{}", improvements, converter.stats());
    let etrace_stats = reader.etrace_stats();
    if let Some(es) = &etrace_stats {
        println!("\n{}", cli::etrace_summary(es));
    }
    if let Some(path) = metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("tool", "trace-stats");
        registry.label("trace", &trace_path);
        registry.label("improvements", &improvements.to_string());
        cli::export_cvp_stats(&stats, &mut registry);
        converter.stats().export(improvements, &mut registry);
        if let Some(es) = &etrace_stats {
            cli::export_etrace_stats(es, &mut registry);
        }
        cli::write_metrics(&path, &registry)?;
    }
    Ok(())
}
