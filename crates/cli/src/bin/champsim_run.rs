//! Runs a ChampSim trace through the core model and prints the report.
//!
//! ```text
//! champsim-run <trace.champsimtrace> [--core iiswc|ipc1] [--warmup N]
//!              [--prefetcher <name>] [--max N] [--metrics <path>]
//!              [--epochs N] [--improvements <set>]
//! ```
//!
//! Accepts flat record files, block-compressed `.champsimz` stores, and
//! packetized `.etrace` RISC-V branch traces — the latter are decoded
//! and converted in memory (under `--improvements`, `No_imp` by
//! default, matching the server) before simulation. The core presets
//! match the paper's §4 setups; `--prefetcher` plugs one of the IPC-1
//! instruction prefetchers into the L1I. `--metrics` writes the full
//! `sim.*`/`memsys.*`/`bpred.*` telemetry document (see METRICS.md);
//! `--epochs N` additionally samples cycles and miss counters every N
//! instructions into the document's `epochs` section.

use std::path::Path;
use std::process::ExitCode;

use champsim_trace::ChampsimRecord;
use converter::{Converter, ImprovementSet};
use sim::{CoreConfig, RunOptions, Simulator};
use trace_store::{is_etrace_path, ChampsimTraceReader, CvpTraceReader};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("champsim-run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_path: Option<String> = None;
    let mut core = CoreConfig::iiswc_main();
    let mut core_name = "iiswc";
    let mut warmup = 0u64;
    let mut prefetcher: Option<String> = None;
    let mut max_records = usize::MAX;
    let mut metrics_path: Option<String> = None;
    let mut epochs: Option<u64> = None;
    let mut improvements: Option<ImprovementSet> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--core" => {
                core = match args.next().as_deref() {
                    Some("iiswc") => {
                        core_name = "iiswc";
                        CoreConfig::iiswc_main()
                    }
                    Some("ipc1") => {
                        core_name = "ipc1";
                        CoreConfig::ipc1()
                    }
                    other => return Err(format!("unknown core {other:?}").into()),
                };
            }
            "--warmup" => warmup = args.next().ok_or("--warmup needs a count")?.parse()?,
            "--prefetcher" => prefetcher = Some(args.next().ok_or("--prefetcher needs a name")?),
            "--max" => max_records = args.next().ok_or("--max needs a count")?.parse()?,
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "--epochs" => {
                let n: u64 = args.next().ok_or("--epochs needs a count")?.parse()?;
                if n == 0 {
                    return Err("--epochs must be positive".into());
                }
                epochs = Some(n);
            }
            "--improvements" => {
                improvements =
                    Some(args.next().ok_or("--improvements needs an improvement name")?.parse()?);
            }
            "-h" | "--help" => {
                eprintln!(
                    "usage: champsim-run <trace.champsimtrace|trace.etrace> [--core iiswc|ipc1] \
                     [--warmup N] [--prefetcher none|next-line|djolt|jip|mana|fnl+mma|pips|epi|barca|tap] \
                     [--max N] [--metrics <path>] [--epochs N] [--improvements <set>]"
                );
                return Ok(());
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_owned());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let trace_path = trace_path.ok_or("missing trace path")?;
    let records: Vec<ChampsimRecord> = if is_etrace_path(Path::new(&trace_path)) {
        // Decode the E-Trace packet stream to CVP instructions and
        // convert them in memory — the same path the server takes for
        // an `.etrace` job, which keeps the two documents identical.
        let mut reader = CvpTraceReader::open(Path::new(&trace_path))
            .map_err(|e| format!("{trace_path}: {e}"))?;
        let mut converter = Converter::new(improvements.unwrap_or_else(ImprovementSet::none));
        let mut records = Vec::new();
        while let Some(insn) = reader.read().map_err(|e| format!("{trace_path}: {e}"))? {
            records.extend(converter.convert(&insn));
            if records.len() >= max_records {
                break;
            }
        }
        records.truncate(max_records);
        records
    } else {
        if improvements.is_some() {
            return Err("--improvements only applies to .etrace inputs".into());
        }
        let reader = ChampsimTraceReader::open(Path::new(&trace_path))
            .map_err(|e| format!("{trace_path}: {e}"))?;
        let mut records = Vec::new();
        for rec in reader {
            records.push(rec.map_err(|e| format!("{trace_path}: {e}"))?);
            if records.len() >= max_records {
                break;
            }
        }
        records
    };
    if records.is_empty() {
        return Err(format!("{trace_path}: trace contains no records").into());
    }

    let mut options = RunOptions::default().with_warmup(warmup);
    if let Some(n) = epochs {
        options = options.with_epochs(n);
    }
    if let Some(name) = prefetcher {
        let pf = iprefetch_by_name(&name)?;
        options = options.with_prefetcher(pf);
    }
    let report = Simulator::new(core).run_with_options(&records, options);
    println!("{report}");
    if let Some(path) = metrics_path {
        let registry = cli::champsim_run_registry(&report, core_name, &trace_path);
        cli::write_metrics(&path, &registry)?;
    }
    Ok(())
}

fn iprefetch_by_name(
    name: &str,
) -> Result<Box<dyn iprefetch::InstructionPrefetcher + Send>, String> {
    iprefetch::by_name(name).ok_or_else(|| format!("unknown prefetcher {name:?}"))
}
