//! Generates synthetic CVP-1 and RISC-V E-Trace traces.
//!
//! ```text
//! tracegen --kind <kind> --seed N --length N -o <out.cvp> [--metrics <path>]
//! tracegen --kind <rv-kind> --seed N --length N -o <out.etrace>
//! tracegen --suite cvp1|ipc1|rv --name <trace> --length N -o <out>
//! tracegen --suite cvp1|ipc1|rv --list
//! ```
//!
//! ARM-flavoured CVP kinds (`pointer-chase`, `streaming`, `crypto`,
//! `branchy-int`, `server`, `fp-kernel`) write CVP-1 record streams; an
//! output path ending in `.cvpz` writes a block-compressed store
//! instead of a flat stream. RISC-V kinds (`rv-int`, `rv-stream`,
//! `rv-dispatch`) write packetized `.etrace` branch traces (program
//! image + E-Trace control/memory streams). `--metrics` writes the
//! `workloads.*` telemetry document (plus `store.*` counters in store
//! mode, `etrace.*` counters in E-Trace mode; see METRICS.md).

use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;

use etrace::EtraceWriter;
use trace_store::{is_etrace_path, CvpTraceWriter};
use workloads::{
    cvp1_public_suite, ipc1_suite, rv_suite, RvTraceSpec, RvWorkloadKind, TraceSpec, WorkloadKind,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracegen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A workload family: ARM-flavoured CVP records or RISC-V E-Trace.
enum Kind {
    Cvp(WorkloadKind),
    Rv(RvWorkloadKind),
}

fn parse_kind(name: &str) -> Result<Kind, String> {
    Ok(match name {
        "pointer-chase" => Kind::Cvp(WorkloadKind::PointerChase),
        "streaming" => Kind::Cvp(WorkloadKind::Streaming),
        "crypto" => Kind::Cvp(WorkloadKind::Crypto),
        "branchy-int" => Kind::Cvp(WorkloadKind::BranchyInt),
        "server" => Kind::Cvp(WorkloadKind::Server),
        "fp-kernel" => Kind::Cvp(WorkloadKind::FpKernel),
        "rv-int" => Kind::Rv(RvWorkloadKind::IntLoop),
        "rv-stream" => Kind::Rv(RvWorkloadKind::StreamKernel),
        "rv-dispatch" => Kind::Rv(RvWorkloadKind::Dispatch),
        other => return Err(format!("unknown kind {other:?}")),
    })
}

/// A resolved generation job for either family.
enum Job {
    Cvp(TraceSpec),
    Rv(RvTraceSpec),
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut kind: Option<Kind> = None;
    let mut suite: Option<String> = None;
    let mut name: Option<String> = None;
    let mut seed = 1u64;
    let mut length = 100_000usize;
    let mut out: Option<String> = None;
    let mut list = false;
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => kind = Some(parse_kind(&args.next().ok_or("--kind needs a name")?)?),
            "--suite" => suite = Some(args.next().ok_or("--suite needs cvp1, ipc1 or rv")?),
            "--name" => name = Some(args.next().ok_or("--name needs a trace name")?),
            "--seed" => seed = args.next().ok_or("--seed needs a value")?.parse()?,
            "--length" => length = args.next().ok_or("--length needs a count")?.parse()?,
            "-o" | "--output" => out = Some(args.next().ok_or("-o needs a path")?),
            "--list" => list = true,
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "-h" | "--help" => {
                eprintln!(
                    "usage: tracegen --kind <pointer-chase|streaming|crypto|branchy-int|server|fp-kernel> \
                     --seed N --length N -o <out.cvp> [--metrics <path>]\n\
                     \x20      tracegen --kind <rv-int|rv-stream|rv-dispatch> --seed N --length N -o <out.etrace>\n\
                     \x20      tracegen --suite cvp1|ipc1|rv --name <trace> --length N -o <out>\n\
                     \x20      tracegen --suite cvp1|ipc1|rv --list"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let suite_specs = |s: &str| -> Result<Vec<TraceSpec>, String> {
        match s {
            "cvp1" => Ok(cvp1_public_suite()),
            "ipc1" => Ok(ipc1_suite()),
            other => Err(format!("unknown suite {other:?}")),
        }
    };

    if list {
        let suite = suite.ok_or("--list needs --suite")?;
        if suite == "rv" {
            for spec in rv_suite() {
                println!("{:<20} kind={} seed={}", spec.name(), spec.kind(), spec.seed());
            }
        } else {
            for spec in suite_specs(&suite)? {
                println!("{:<20} kind={} seed={}", spec.name(), spec.kind(), spec.seed());
            }
        }
        return Ok(());
    }

    let job = match (&suite, &name, kind) {
        (Some(s), Some(n), _) if s == "rv" => Job::Rv(
            rv_suite()
                .into_iter()
                .find(|t| t.name() == n)
                .ok_or_else(|| format!("trace {n:?} not in suite {s:?}"))?
                .with_length(length),
        ),
        (Some(s), Some(n), _) => Job::Cvp(
            suite_specs(s)?
                .into_iter()
                .find(|t| t.name() == n)
                .ok_or_else(|| format!("trace {n:?} not in suite {s:?}"))?
                .with_length(length),
        ),
        (None, None, Some(Kind::Cvp(k))) => {
            Job::Cvp(TraceSpec::new("custom", k, seed).with_length(length))
        }
        (None, None, Some(Kind::Rv(k))) => {
            Job::Rv(RvTraceSpec::new("custom", k, seed).with_length(length))
        }
        _ => return Err("give either --kind, or --suite with --name".into()),
    };

    if length == 0 {
        return Err("--length must be positive".into());
    }
    let out = out.ok_or("missing -o <out.cvp|out.etrace>")?;
    match job {
        Job::Cvp(spec) => {
            let mut writer =
                CvpTraceWriter::create(Path::new(&out)).map_err(|e| format!("{out}: {e}"))?;
            for insn in spec.generate() {
                writer.write(&insn).map_err(|e| format!("{out}: {e}"))?;
            }
            let records = writer.records_written();
            let store_stats = writer.finish().map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {records} instructions to {out}");
            if let Some(stats) = &store_stats {
                eprintln!("{}", cli::store_summary(stats));
            }
            if let Some(path) = metrics_path {
                let mut registry = telemetry::Registry::new();
                registry.label("tool", "tracegen");
                registry.label("trace", spec.name());
                registry.label("kind", &spec.kind().to_string());
                registry.counter(&telemetry::catalog::WORKLOADS_GENERATED_INSTRUCTIONS, records);
                if let Some(stats) = &store_stats {
                    cli::export_store_stats(stats, &mut registry);
                }
                cli::write_metrics(&path, &registry)?;
            }
        }
        Job::Rv(spec) => {
            if !is_etrace_path(Path::new(&out)) {
                return Err(format!(
                    "{out}: RISC-V workloads write E-Trace packet streams; use -o <out.etrace>"
                )
                .into());
            }
            let (program, items) = spec.generate();
            let file = std::fs::File::create(&out).map_err(|e| format!("{out}: {e}"))?;
            let mut writer = EtraceWriter::new(BufWriter::new(file), &program)
                .map_err(|e| format!("{out}: {e}"))?;
            for item in &items {
                writer.write(item).map_err(|e| format!("{out}: {e}"))?;
            }
            let (mut sink, stats) = writer.finish().map_err(|e| format!("{out}: {e}"))?;
            std::io::Write::flush(&mut sink).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("wrote {} instructions to {out}", stats.items);
            eprintln!("{}", cli::etrace_summary(&stats));
            if let Some(path) = metrics_path {
                let mut registry = telemetry::Registry::new();
                registry.label("tool", "tracegen");
                registry.label("trace", spec.name());
                registry.label("kind", &spec.kind().to_string());
                registry
                    .counter(&telemetry::catalog::WORKLOADS_GENERATED_INSTRUCTIONS, stats.items);
                cli::export_etrace_stats(&stats, &mut registry);
                cli::write_metrics(&path, &registry)?;
            }
        }
    }
    Ok(())
}
