//! Generates synthetic CVP-1 traces.
//!
//! ```text
//! tracegen --kind <kind> --seed N --length N -o <out.cvp> [--metrics <path>]
//! tracegen --suite cvp1|ipc1 --name <trace> --length N -o <out.cvp>
//! tracegen --suite cvp1|ipc1 --list
//! ```
//!
//! An output path ending in `.cvpz` writes a block-compressed store
//! instead of a flat record stream (readable by every tool that takes a
//! trace path). `--metrics` writes the `workloads.*` telemetry document
//! (plus `store.*` volume counters in store mode; see METRICS.md).

use std::path::Path;
use std::process::ExitCode;

use trace_store::CvpTraceWriter;
use workloads::{cvp1_public_suite, ipc1_suite, TraceSpec, WorkloadKind};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tracegen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_kind(name: &str) -> Result<WorkloadKind, String> {
    Ok(match name {
        "pointer-chase" => WorkloadKind::PointerChase,
        "streaming" => WorkloadKind::Streaming,
        "crypto" => WorkloadKind::Crypto,
        "branchy-int" => WorkloadKind::BranchyInt,
        "server" => WorkloadKind::Server,
        "fp-kernel" => WorkloadKind::FpKernel,
        other => return Err(format!("unknown kind {other:?}")),
    })
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut kind: Option<WorkloadKind> = None;
    let mut suite: Option<String> = None;
    let mut name: Option<String> = None;
    let mut seed = 1u64;
    let mut length = 100_000usize;
    let mut out: Option<String> = None;
    let mut list = false;
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kind" => kind = Some(parse_kind(&args.next().ok_or("--kind needs a name")?)?),
            "--suite" => suite = Some(args.next().ok_or("--suite needs cvp1 or ipc1")?),
            "--name" => name = Some(args.next().ok_or("--name needs a trace name")?),
            "--seed" => seed = args.next().ok_or("--seed needs a value")?.parse()?,
            "--length" => length = args.next().ok_or("--length needs a count")?.parse()?,
            "-o" | "--output" => out = Some(args.next().ok_or("-o needs a path")?),
            "--list" => list = true,
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "-h" | "--help" => {
                eprintln!(
                    "usage: tracegen --kind <pointer-chase|streaming|crypto|branchy-int|server|fp-kernel> \
                     --seed N --length N -o <out.cvp> [--metrics <path>]\n\
                     \x20      tracegen --suite cvp1|ipc1 --name <trace> --length N -o <out.cvp>\n\
                     \x20      tracegen --suite cvp1|ipc1 --list"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let suite_specs = |s: &str| -> Result<Vec<TraceSpec>, String> {
        match s {
            "cvp1" => Ok(cvp1_public_suite()),
            "ipc1" => Ok(ipc1_suite()),
            other => Err(format!("unknown suite {other:?}")),
        }
    };

    if list {
        let suite = suite.ok_or("--list needs --suite")?;
        for spec in suite_specs(&suite)? {
            println!("{:<20} kind={} seed={}", spec.name(), spec.kind(), spec.seed());
        }
        return Ok(());
    }

    let spec = match (&suite, &name, kind) {
        (Some(s), Some(n), _) => suite_specs(s)?
            .into_iter()
            .find(|t| t.name() == n)
            .ok_or_else(|| format!("trace {n:?} not in suite {s:?}"))?,
        (None, None, Some(k)) => TraceSpec::new("custom", k, seed),
        _ => return Err("give either --kind, or --suite with --name".into()),
    }
    .with_length(length);

    if length == 0 {
        return Err("--length must be positive".into());
    }
    let out = out.ok_or("missing -o <out.cvp>")?;
    let mut writer = CvpTraceWriter::create(Path::new(&out)).map_err(|e| format!("{out}: {e}"))?;
    for insn in spec.generate() {
        writer.write(&insn).map_err(|e| format!("{out}: {e}"))?;
    }
    let records = writer.records_written();
    let store_stats = writer.finish().map_err(|e| format!("{out}: {e}"))?;
    eprintln!("wrote {records} instructions to {out}");
    if let Some(stats) = &store_stats {
        eprintln!("{}", cli::store_summary(stats));
    }
    if let Some(path) = metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("tool", "tracegen");
        registry.label("trace", spec.name());
        registry.label("kind", &spec.kind().to_string());
        registry.counter(&telemetry::catalog::WORKLOADS_GENERATED_INSTRUCTIONS, records);
        if let Some(stats) = &store_stats {
            cli::export_store_stats(stats, &mut registry);
        }
        cli::write_metrics(&path, &registry)?;
    }
    Ok(())
}
