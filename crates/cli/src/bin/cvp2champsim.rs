//! The paper's converter CLI, with the artifact's interface:
//!
//! ```text
//! cvp2champsim -t <trace.cvp> [-i <improvement>] [-o <out.champsimtrace>]
//!              [--stats] [--metrics <path>]
//! ```
//!
//! Reads a CVP-1 binary trace (flat `.cvp`, compressed `.cvpz`, or a
//! RISC-V `.etrace` branch trace decoded to CVP records on the fly),
//! converts it with the selected improvement set (`No_imp` by default,
//! as in the original tool), and writes ChampSim 64-byte records to
//! `-o` or standard output; an output path ending in `.champsimz`
//! writes a block-compressed store. `--stats` prints the conversion
//! statistics to standard error; `--metrics` writes the `convert.*`
//! telemetry document (plus `store.*` counters in store mode; see
//! METRICS.md).

use std::io::{self, BufWriter};
use std::path::Path;
use std::process::ExitCode;

use champsim_trace::{ChampsimRecord, ChampsimWriter};
use converter::{Converter, ImprovementSet};
use trace_store::{ChampsimTraceWriter, CvpTraceReader, StoreStats};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cvp2champsim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut improvements = ImprovementSet::none();
    let mut show_stats = false;
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-t" | "--trace" => trace_path = Some(args.next().ok_or("-t needs a path")?),
            "-o" | "--output" => out_path = Some(args.next().ok_or("-o needs a path")?),
            "-i" | "--improvement" => {
                improvements = args.next().ok_or("-i needs an improvement name")?.parse()?;
            }
            "--stats" => show_stats = true,
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "-h" | "--help" => {
                eprintln!(
                    "usage: cvp2champsim -t <trace.cvp|trace.etrace> [-i <improvement>] \
                     [-o <out.champsimtrace>] [--stats] [--metrics <path>]\n\
                     improvements: No_imp (default), All_imps, Memory_imps, Branch_imps,\n\
                     imp_mem-regs, imp_base-update, imp_mem-footprint, imp_call-stack,\n\
                     imp_branch-regs, imp_flag-regs"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let trace_path = trace_path.ok_or("missing -t <trace.cvp>")?;
    let mut reader =
        CvpTraceReader::open(Path::new(&trace_path)).map_err(|e| format!("{trace_path}: {e}"))?;

    // `-o` dispatches on extension (`.champsimz` = compressed store);
    // standard output is always a flat record stream.
    enum Sink {
        File(ChampsimTraceWriter),
        Stdout(ChampsimWriter<BufWriter<io::Stdout>>),
    }
    let mut sink = match &out_path {
        Some(p) => {
            Sink::File(ChampsimTraceWriter::create(Path::new(p)).map_err(|e| format!("{p}: {e}"))?)
        }
        None => Sink::Stdout(ChampsimWriter::new(BufWriter::new(io::stdout()))),
    };
    let mut write = |rec: &ChampsimRecord| -> Result<(), champsim_trace::ChampsimTraceError> {
        match &mut sink {
            Sink::File(w) => w.write(rec),
            Sink::Stdout(w) => w.write(rec),
        }
    };
    let mut converter = Converter::new(improvements);

    let mut instructions = 0u64;
    while let Some(insn) = reader.read().map_err(|e| format!("{trace_path}: {e}"))? {
        instructions += 1;
        for rec in converter.convert(&insn) {
            write(&rec)?;
        }
    }
    if instructions == 0 {
        return Err(format!("{trace_path}: trace contains no instructions").into());
    }
    let store_stats: Option<StoreStats> = match sink {
        Sink::File(w) => w.finish()?,
        Sink::Stdout(mut w) => {
            w.flush()?;
            None
        }
    };

    if show_stats {
        eprintln!("{}", converter.stats());
        if let Some(stats) = &store_stats {
            eprintln!("{}", cli::store_summary(stats));
        }
    }
    if let Some(path) = metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("tool", "cvp2champsim");
        registry.label("trace", &trace_path);
        registry.label("improvements", &improvements.to_string());
        converter.stats().export(improvements, &mut registry);
        if let Some(stats) = &store_stats {
            cli::export_store_stats(stats, &mut registry);
        }
        cli::write_metrics(&path, &registry)?;
    }
    Ok(())
}
