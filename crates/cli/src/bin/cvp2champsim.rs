//! The paper's converter CLI, with the artifact's interface:
//!
//! ```text
//! cvp2champsim -t <trace.cvp> [-i <improvement>] [-o <out.champsimtrace>]
//!              [--stats] [--metrics <path>]
//! ```
//!
//! Reads a CVP-1 binary trace, converts it with the selected improvement
//! set (`No_imp` by default, as in the original tool), and writes
//! ChampSim 64-byte records to `-o` or standard output. `--stats` prints
//! the conversion statistics to standard error; `--metrics` writes the
//! `convert.*` telemetry document (see METRICS.md).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::process::ExitCode;

use champsim_trace::ChampsimWriter;
use converter::{Converter, ImprovementSet};
use cvp_trace::CvpReader;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cvp2champsim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut improvements = ImprovementSet::none();
    let mut show_stats = false;
    let mut metrics_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-t" | "--trace" => trace_path = Some(args.next().ok_or("-t needs a path")?),
            "-o" | "--output" => out_path = Some(args.next().ok_or("-o needs a path")?),
            "-i" | "--improvement" => {
                improvements = args.next().ok_or("-i needs an improvement name")?.parse()?;
            }
            "--stats" => show_stats = true,
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics needs a path")?),
            "-h" | "--help" => {
                eprintln!(
                    "usage: cvp2champsim -t <trace.cvp> [-i <improvement>] \
                     [-o <out.champsimtrace>] [--stats] [--metrics <path>]\n\
                     improvements: No_imp (default), All_imps, Memory_imps, Branch_imps,\n\
                     imp_mem-regs, imp_base-update, imp_mem-footprint, imp_call-stack,\n\
                     imp_branch-regs, imp_flag-regs"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }

    let trace_path = trace_path.ok_or("missing -t <trace.cvp>")?;
    let input = BufReader::new(File::open(&trace_path)?);
    let mut reader = CvpReader::new(input);

    let sink: Box<dyn Write> = match &out_path {
        Some(p) => Box::new(BufWriter::new(File::create(p)?)),
        None => Box::new(BufWriter::new(io::stdout().lock())),
    };
    let mut writer = ChampsimWriter::new(sink);
    let mut converter = Converter::new(improvements);

    while let Some(insn) = reader.read()? {
        for rec in converter.convert(&insn) {
            writer.write(&rec)?;
        }
    }
    writer.flush()?;

    if show_stats {
        eprintln!("{}", converter.stats());
    }
    if let Some(path) = metrics_path {
        let mut registry = telemetry::Registry::new();
        registry.label("tool", "cvp2champsim");
        registry.label("trace", &trace_path);
        registry.label("improvements", &improvements.to_string());
        converter.stats().export(improvements, &mut registry);
        cli::write_metrics(&path, &registry)?;
    }
    Ok(())
}
