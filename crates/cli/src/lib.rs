//! Shared plumbing for the command-line tools.
//!
//! The four binaries cover the paper's workflow end to end:
//!
//! ```text
//!  tracegen ──► trace.cvp ──► cvp2champsim ──► trace.champsimtrace
//!                  │                                  │
//!                  ▼                                  ▼
//!             trace-stats                        champsim-run
//!          (mix + conversion)                 (IPC, MPKI, stalls)
//! ```
//!
//! Every binary accepts `--metrics <path>` and writes one
//! [`telemetry`] JSON document (see `METRICS.md`); this library holds
//! the exporters the binaries share — most notably the `cvp.*` metrics
//! for [`CvpTraceStats`], which live here because `cvp-trace` itself is
//! dependency-free.

use cvp_trace::{CvpClass, CvpTraceStats};
use etrace::EtraceStats;
use telemetry::{catalog, Registry};
use trace_store::StoreStats;

/// Registers a CVP-1 trace characterization under `cvp.*`, including
/// one `cvp.class.{class}.count` instance per instruction class that
/// occurs in the trace.
pub fn export_cvp_stats(stats: &CvpTraceStats, registry: &mut Registry) {
    registry.counter(&catalog::CVP_INSTRUCTIONS, stats.total());
    registry.counter(&catalog::CVP_TAKEN_BRANCHES, stats.taken_branches());
    registry.counter(&catalog::CVP_BRANCHES, stats.branches());
    registry.counter(&catalog::CVP_MEMORY_NO_DEST, stats.memory_no_dest());
    registry.counter(&catalog::CVP_LOADS_MULTI_DEST, stats.loads_multi_dest());
    registry.counter(&catalog::CVP_ALU_FP_NO_DEST, stats.alu_fp_no_dest());
    registry.gauge(&catalog::CVP_MEAN_SOURCES, stats.mean_sources());
    registry.gauge(&catalog::CVP_MEAN_DESTINATIONS, stats.mean_destinations());
    for class in CvpClass::ALL {
        let n = stats.count(class);
        if n > 0 {
            registry.counter_at(&catalog::CVP_CLASS_COUNT, &class.to_string(), n);
        }
    }
}

/// Registers a written store's volume counters under `store.*`.
pub fn export_store_stats(stats: &StoreStats, registry: &mut Registry) {
    registry.counter(&catalog::STORE_BLOCKS_WRITTEN, stats.blocks_written);
    registry.counter(&catalog::STORE_BYTES_RAW, stats.bytes_raw);
    registry.counter(&catalog::STORE_BYTES_COMPRESSED, stats.bytes_compressed);
    registry.gauge(&catalog::STORE_COMPRESSION_RATIO, stats.compression_ratio());
}

/// Registers an E-Trace decode's packet and volume counters under
/// `etrace.*`.
pub fn export_etrace_stats(stats: &EtraceStats, registry: &mut Registry) {
    registry.counter(&catalog::ETRACE_INSTRUCTIONS, stats.items);
    registry.counter(&catalog::ETRACE_PACKETS, stats.packets);
    registry.counter(&catalog::ETRACE_SYNC_RECOVERIES, stats.sync_recoveries);
    registry.gauge(&catalog::ETRACE_BYTES_PER_INSTRUCTION, stats.bytes_per_instruction());
    registry.gauge(&catalog::ETRACE_COMPRESSION_RATIO, stats.compression_ratio());
}

/// One-line human summary of a written `.etrace` file (the binaries
/// print this to standard error after encoding one).
pub fn etrace_summary(stats: &EtraceStats) -> String {
    format!(
        "etrace: {} instructions, {} packets, {} -> {} bytes ({:.2}x, {:.3} B/insn)",
        stats.items,
        stats.packets,
        stats.flat_bytes,
        stats.file_bytes,
        stats.compression_ratio(),
        stats.bytes_per_instruction()
    )
}

/// One-line human summary of a written store (the binaries print this
/// to standard error after finishing a `.cvpz`/`.champsimz` file).
pub fn store_summary(stats: &StoreStats) -> String {
    format!(
        "store: {} blocks, {} -> {} bytes ({:.2}x)",
        stats.blocks_written,
        stats.bytes_raw,
        stats.bytes_compressed,
        stats.compression_ratio()
    )
}

/// Builds the deterministic `champsim-run --metrics` document for one
/// simulation: the tool/core/trace labels followed by the report's
/// `sim.*`/`memsys.*`/`bpred.*` export. The `champsim-run` binary and
/// `sim-server` both build their documents through this function, which
/// is what makes a server-fetched result for a trace job byte-identical
/// to a local `champsim-run --metrics` of the same configuration.
pub fn champsim_run_registry(report: &sim::SimReport, core_name: &str, trace: &str) -> Registry {
    let mut registry = Registry::new();
    registry.label("tool", "champsim-run");
    registry.label("core", core_name);
    registry.label("trace", trace);
    report.export(&mut registry);
    registry
}

/// Writes the registry's JSON document to `path` and prints a
/// confirmation to standard error (the binaries' `--metrics` epilogue).
pub fn write_metrics(path: &str, registry: &Registry) -> std::io::Result<()> {
    std::fs::write(path, registry.to_json())?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvp_trace::CvpInstruction;

    #[test]
    fn store_export_covers_volume_and_ratio() {
        let stats = StoreStats { blocks_written: 2, bytes_raw: 1000, bytes_compressed: 250 };
        let mut registry = Registry::new();
        export_store_stats(&stats, &mut registry);
        assert_eq!(registry.counter_value("store.blocks_written"), 2);
        assert_eq!(registry.counter_value("store.bytes_raw"), 1000);
        assert_eq!(registry.counter_value("store.bytes_compressed"), 250);
        assert!(registry.get("store.compression_ratio").is_some());
        assert_eq!(store_summary(&stats), "store: 2 blocks, 1000 -> 250 bytes (4.00x)");
    }

    #[test]
    fn etrace_export_covers_packets_and_ratios() {
        let stats = EtraceStats {
            items: 1000,
            packets: 40,
            flat_bytes: 9000,
            file_bytes: 1500,
            ..EtraceStats::default()
        };
        let mut registry = Registry::new();
        export_etrace_stats(&stats, &mut registry);
        assert_eq!(registry.counter_value("etrace.instructions"), 1000);
        assert_eq!(registry.counter_value("etrace.packets"), 40);
        assert_eq!(registry.counter_value("etrace.sync_recoveries"), 0);
        assert!(registry.get("etrace.bytes_per_instruction").is_some());
        assert!(registry.get("etrace.compression_ratio").is_some());
        assert_eq!(
            etrace_summary(&stats),
            "etrace: 1000 instructions, 40 packets, 9000 -> 1500 bytes (6.00x, 1.500 B/insn)"
        );
    }

    #[test]
    fn cvp_export_covers_mix_and_classes() {
        let mut stats = CvpTraceStats::new();
        stats.record(&CvpInstruction::alu(0).with_destination(1, 0u64));
        stats.record(&CvpInstruction::load(4, 0x100, 8).with_destination(2, 0u64));
        stats.record(&CvpInstruction::cond_branch(8, true, 0x40));
        let mut registry = Registry::new();
        export_cvp_stats(&stats, &mut registry);
        assert_eq!(registry.counter_value("cvp.instructions"), 3);
        assert_eq!(registry.counter_value("cvp.class.load.count"), 1);
        assert_eq!(registry.counter_value("cvp.class.cond-branch.count"), 1);
        assert!(registry.get("cvp.class.store.count").is_none(), "empty classes are skipped");
        assert!(registry.get("cvp.mean_sources").is_some());
    }
}
