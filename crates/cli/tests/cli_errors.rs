//! Error-path audit of the four CLI binaries: malformed, empty, and
//! truncated inputs must exit nonzero with a one-line diagnostic that
//! names the path (and byte offset or block where available) — and
//! must never panic.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CVP2CHAMPSIM: &str = env!("CARGO_BIN_EXE_cvp2champsim");
const CHAMPSIM_RUN: &str = env!("CARGO_BIN_EXE_champsim-run");
const TRACEGEN: &str = env!("CARGO_BIN_EXE_tracegen");
const TRACE_STATS: &str = env!("CARGO_BIN_EXE_trace-stats");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cli-errors-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().unwrap()
}

/// Asserts `output` failed cleanly: nonzero exit, no panic, and a
/// single-line diagnostic mentioning every `needles` fragment.
fn assert_diagnostic(output: &Output, needles: &[&str]) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!output.status.success(), "expected failure, got success; stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "binary panicked: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "want one-line diagnostic, got: {stderr}");
    for needle in needles {
        assert!(stderr.contains(needle), "diagnostic {stderr:?} misses {needle:?}");
    }
}

/// Generates a small flat `.cvp` trace and returns its path.
fn sample_cvp(dir: &Path) -> PathBuf {
    let path = dir.join("sample.cvp");
    let out = run(
        TRACEGEN,
        &["--kind", "crypto", "--seed", "5", "--length", "400", "-o", path.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    path
}

/// Converts the sample to a flat `.champsimtrace` and returns its path.
fn sample_champsim(dir: &Path) -> PathBuf {
    let cvp = sample_cvp(dir);
    let path = dir.join("sample.champsimtrace");
    let out = run(CVP2CHAMPSIM, &["-t", cvp.to_str().unwrap(), "-o", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    path
}

fn truncate(path: &Path, cut_from_end: usize) {
    let bytes = std::fs::read(path).unwrap();
    std::fs::write(path, &bytes[..bytes.len() - cut_from_end]).unwrap();
}

#[test]
fn missing_files_name_the_path() {
    let missing = "definitely/not/here.cvp";
    assert_diagnostic(&run(CVP2CHAMPSIM, &["-t", missing]), &["cvp2champsim:", missing]);
    assert_diagnostic(&run(TRACE_STATS, &[missing]), &["trace-stats:", missing]);
    let missing_champ = "definitely/not/here.champsimtrace";
    assert_diagnostic(&run(CHAMPSIM_RUN, &[missing_champ]), &["champsim-run:", missing_champ]);
}

#[test]
fn empty_traces_are_rejected_not_silently_processed() {
    let dir = scratch_dir("empty");
    let cvp = dir.join("empty.cvp");
    let champ = dir.join("empty.champsimtrace");
    std::fs::write(&cvp, b"").unwrap();
    std::fs::write(&champ, b"").unwrap();
    let cvp_text = cvp.to_str().unwrap();
    let champ_text = champ.to_str().unwrap();
    assert_diagnostic(
        &run(CVP2CHAMPSIM, &["-t", cvp_text]),
        &["cvp2champsim:", cvp_text, "no instructions"],
    );
    assert_diagnostic(&run(TRACE_STATS, &[cvp_text]), &[cvp_text, "no instructions"]);
    assert_diagnostic(&run(CHAMPSIM_RUN, &[champ_text]), &[champ_text, "no records"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_flat_traces_report_path_and_offset() {
    let dir = scratch_dir("truncflat");
    let cvp = sample_cvp(&dir);
    // CVP records are at least 9 bytes, so cutting 3 always lands
    // mid-record.
    truncate(&cvp, 3);
    let cvp_text = cvp.to_str().unwrap();
    assert_diagnostic(&run(CVP2CHAMPSIM, &["-t", cvp_text]), &[cvp_text, "byte"]);
    assert_diagnostic(&run(TRACE_STATS, &[cvp_text]), &[cvp_text, "byte"]);

    let champ = sample_champsim(&dir);
    // ChampSim records are exactly 64 bytes; cut mid-record.
    truncate(&champ, 32);
    let champ_text = champ.to_str().unwrap();
    assert_diagnostic(&run(CHAMPSIM_RUN, &[champ_text]), &[champ_text, "byte"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_stores_report_path_and_block() {
    let dir = scratch_dir("truncstore");
    let cvpz = dir.join("sample.cvpz");
    let out = run(
        TRACEGEN,
        &["--kind", "streaming", "--seed", "6", "--length", "3000", "-o", cvpz.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&cvpz).unwrap();
    // Keep the header but cut deep inside the compressed payload.
    std::fs::write(&cvpz, &bytes[..bytes.len() / 2]).unwrap();
    let cvpz_text = cvpz.to_str().unwrap();
    assert_diagnostic(&run(CVP2CHAMPSIM, &["-t", cvpz_text]), &[cvpz_text, "block"]);
    assert_diagnostic(&run(TRACE_STATS, &[cvpz_text]), &[cvpz_text, "block"]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Generates a small `.etrace` trace and returns its path.
fn sample_etrace(dir: &Path) -> PathBuf {
    let path = dir.join("sample.etrace");
    let out = run(
        TRACEGEN,
        &["--kind", "rv-int", "--seed", "5", "--length", "2000", "-o", path.to_str().unwrap()],
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn truncated_etrace_reports_path_and_offset_everywhere() {
    let dir = scratch_dir("truncetrace");
    let path = sample_etrace(&dir);
    // Framing lengths are validated up front, so any strict prefix
    // fails at open with the byte offset of the shortfall.
    truncate(&path, 7);
    let text = path.to_str().unwrap();
    assert_diagnostic(&run(CVP2CHAMPSIM, &["-t", text]), &["cvp2champsim:", text, "byte"]);
    assert_diagnostic(&run(TRACE_STATS, &[text]), &["trace-stats:", text, "byte"]);
    assert_diagnostic(&run(CHAMPSIM_RUN, &[text]), &["champsim-run:", text, "byte"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_etrace_is_rejected_with_magic_diagnostic() {
    let dir = scratch_dir("badetrace");
    let path = dir.join("junk.etrace");
    std::fs::write(&path, b"not an etrace file at all").unwrap();
    let text = path.to_str().unwrap();
    assert_diagnostic(&run(TRACE_STATS, &[text]), &[text, "magic"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_arguments_fail_with_usage_hints() {
    assert_diagnostic(&run(CVP2CHAMPSIM, &["-t", "x.cvp", "-i", "imp_bogus"]), &["cvp2champsim:"]);
    assert_diagnostic(&run(CHAMPSIM_RUN, &["x.champsimtrace", "--core", "zen5"]), &["zen5"]);
    assert_diagnostic(&run(TRACEGEN, &["--kind", "quantum"]), &["quantum"]);
    assert_diagnostic(&run(TRACEGEN, &[]), &["tracegen:"]);
    assert_diagnostic(&run(TRACE_STATS, &["--bogus"]), &["--bogus"]);
}

#[test]
fn rv_kinds_require_an_etrace_output_path_and_vice_versa() {
    let dir = scratch_dir("rvout");
    let wrong = dir.join("rv.cvp");
    assert_diagnostic(
        &run(TRACEGEN, &["--kind", "rv-int", "--length", "100", "-o", wrong.to_str().unwrap()]),
        &["tracegen:", ".etrace"],
    );
    let wrong = dir.join("arm.etrace");
    assert_diagnostic(
        &run(TRACEGEN, &["--kind", "crypto", "--length", "100", "-o", wrong.to_str().unwrap()]),
        &["tracegen:", "program image"],
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn improvements_flag_is_rejected_for_non_etrace_traces() {
    let dir = scratch_dir("impflag");
    let champ = sample_champsim(&dir);
    assert_diagnostic(
        &run(CHAMPSIM_RUN, &[champ.to_str().unwrap(), "--improvements", "All_imps"]),
        &["champsim-run:", ".etrace"],
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracegen_rejects_zero_length_and_unwritable_output() {
    let out_arg = std::env::temp_dir().join("cli-errors-len0.cvp");
    assert_diagnostic(
        &run(TRACEGEN, &["--kind", "crypto", "--length", "0", "-o", out_arg.to_str().unwrap()]),
        &["--length must be positive"],
    );
    assert_diagnostic(
        &run(TRACEGEN, &["--kind", "crypto", "-o", "no/such/dir/out.cvp"]),
        &["tracegen:", "no/such/dir/out.cvp"],
    );
}
