//! Shared numeric formatting for the stack's `Display` impls.
//!
//! Before this crate existed, every stats struct hand-formatted its
//! percentages (`{:.2}` here, `{:.1}` there). All human-readable
//! reports now go through these helpers so the whole stack prints one
//! way.

/// Formats a `0..=1` fraction as a percentage with two decimals:
/// `0.1234` → `"12.34%"`.
pub fn percent(fraction: f64) -> String {
    format!("{:.2}%", 100.0 * fraction)
}

/// Formats an events-per-kilo-instruction rate (MPKI) with two
/// decimals.
pub fn mpki(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a dimensionless ratio (IPC, speedup) with three decimals.
pub fn ratio(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_are_stable() {
        assert_eq!(percent(0.12345), "12.35%");
        assert_eq!(percent(0.0), "0.00%");
        assert_eq!(mpki(3.456), "3.46");
        assert_eq!(ratio(1.23456), "1.235");
    }
}
