//! Unified telemetry layer for the trace-rebase stack.
//!
//! The paper's whole argument rests on *explaining* IPC deltas through
//! secondary metrics — branch MPKI, cache misses per level, split
//! micro-ops, flag-induced mispredicts. This crate gives every component
//! of the stack one common way to expose those counters, and every
//! binary one common way to export them: a self-describing,
//! schema-versioned JSON document with deterministic ordering, so two
//! runs of the same experiment produce byte-identical metric files
//! regardless of thread count.
//!
//! # Data flow
//!
//! ```text
//!   cvp-trace   converter    sim / memsys / bpred / iprefetch
//!      |            |                      |
//!      |  CvpTraceStats  ConversionStats   |  SimReport + pipeline,
//!      |            |                      |  cache, predictor counters
//!      v            v                      v
//!   +-----------------------------------------------------+
//!   |  telemetry::Registry                                 |
//!   |    counters / gauges / log2 histograms / epochs      |
//!   |    every metric named by a catalog Desc              |
//!   +-----------------------------------------------------+
//!             |                         |
//!             v                         v
//!      metrics JSON (--metrics)    METRICS.md (metrics_ref)
//! ```
//!
//! # Design rules
//!
//! * **Catalog-first.** A metric can only be registered through a
//!   [`Desc`] from [`catalog`], so the generated `METRICS.md` reference
//!   is complete by construction. Per-instance metrics (cache levels,
//!   branch types, experiment configurations) use one `{placeholder}`
//!   in the descriptor name.
//! * **Deterministic.** The registry stores metrics in name order and
//!   the JSON writer has no map iteration, no wall-clock values and no
//!   float formatting that depends on locale — identical inputs yield
//!   identical bytes.
//! * **Zero dependencies.** Like the rest of the workspace, everything
//!   (including the JSON writer) is in-tree.
//!
//! # Example
//!
//! ```
//! use telemetry::{catalog, Registry};
//!
//! let mut reg = Registry::new();
//! reg.counter(&catalog::SIM_INSTRUCTIONS, 1_000);
//! reg.counter(&catalog::SIM_CYCLES, 500);
//! reg.gauge(&catalog::SIM_IPC, 2.0);
//! let json = reg.to_json();
//! assert!(json.contains("\"sim.instructions\""));
//! assert!(json.starts_with("{\"schema\":\"trace-rebase-metrics/v1\""));
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod format;

mod epoch;
mod histogram;
mod json;
mod metric;
mod registry;

pub use epoch::EpochSeries;
pub use histogram::Log2Histogram;
pub use metric::{Desc, Kind, Metric, MetricValue, Unit};
pub use registry::Registry;

/// Version tag embedded in every exported document as `"schema"`.
///
/// Bump the trailing number whenever the document layout (not the set
/// of metrics) changes incompatibly.
pub const SCHEMA_VERSION: &str = "trace-rebase-metrics/v1";
