use std::collections::BTreeMap;

use crate::epoch::EpochSeries;
use crate::histogram::Log2Histogram;
use crate::json;
use crate::metric::{Desc, Kind, Metric, MetricValue};
use crate::SCHEMA_VERSION;

/// An ordered collection of registered metrics, labels and epoch
/// series, exportable as one deterministic JSON document.
///
/// Metrics are keyed by their resolved dotted name and stored in name
/// order; labels (free-form string context such as the core preset or
/// the improvement set) are likewise ordered. Registering the same
/// name twice keeps the last value — exporters run once at end of run,
/// so overwrite is the least surprising rule for re-exports.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
    labels: BTreeMap<String, String>,
    epochs: Option<EpochSeries>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Attaches a free-form string label (context, not a metric).
    pub fn label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_owned(), value.to_owned());
    }

    /// Registers a counter through its catalog descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is templated (use [`Registry::counter_at`]) or
    /// not a counter.
    pub fn counter(&mut self, desc: &'static Desc, value: u64) {
        assert!(!desc.is_templated(), "templated descriptor {} needs counter_at", desc.name);
        self.insert(desc.name.to_owned(), desc, MetricValue::Counter(value));
    }

    /// Registers one instance of a templated counter.
    pub fn counter_at(&mut self, desc: &'static Desc, instance: &str, value: u64) {
        self.insert(desc.instance(instance), desc, MetricValue::Counter(value));
    }

    /// Registers a gauge through its catalog descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is templated (use [`Registry::gauge_at`]) or
    /// not a gauge.
    pub fn gauge(&mut self, desc: &'static Desc, value: f64) {
        assert!(!desc.is_templated(), "templated descriptor {} needs gauge_at", desc.name);
        self.insert(desc.name.to_owned(), desc, MetricValue::Gauge(value));
    }

    /// Registers one instance of a templated gauge.
    pub fn gauge_at(&mut self, desc: &'static Desc, instance: &str, value: f64) {
        self.insert(desc.instance(instance), desc, MetricValue::Gauge(value));
    }

    /// Registers a histogram through its catalog descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is templated or not a histogram.
    pub fn histogram(&mut self, desc: &'static Desc, value: Log2Histogram) {
        assert!(!desc.is_templated(), "templated descriptor {} needs an instance", desc.name);
        self.insert(desc.name.to_owned(), desc, MetricValue::Histogram(value));
    }

    fn insert(&mut self, name: String, desc: &'static Desc, value: MetricValue) {
        let kind = match value {
            MetricValue::Counter(_) => Kind::Counter,
            MetricValue::Gauge(_) => Kind::Gauge,
            MetricValue::Histogram(_) => Kind::Histogram,
        };
        assert!(
            kind == desc.kind,
            "metric {} registered as {:?} but declared {:?}",
            name,
            kind,
            desc.kind
        );
        self.metrics.insert(name.clone(), Metric { name, desc, value });
    }

    /// Attaches the per-epoch snapshot series.
    pub fn set_epochs(&mut self, epochs: EpochSeries) {
        self.epochs = Some(epochs);
    }

    /// The attached epoch series, if any.
    pub fn epochs(&self) -> Option<&EpochSeries> {
        self.epochs.as_ref()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The registered metric named `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Convenience: the counter value of `name` (0 when absent or not
    /// a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.get(name).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates all metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.values()
    }

    /// Copies every metric, label and the epoch series (if any) of
    /// `other` into `self`, overwriting same-named entries.
    pub fn merge(&mut self, other: &Registry) {
        for m in other.metrics.values() {
            self.metrics.insert(m.name.clone(), m.clone());
        }
        for (k, v) in &other.labels {
            self.labels.insert(k.clone(), v.clone());
        }
        if let Some(e) = &other.epochs {
            self.epochs = Some(e.clone());
        }
    }

    /// Serializes the registry as the schema-versioned JSON document.
    pub fn to_json(&self) -> String {
        self.to_json_with_sections(&[])
    }

    /// Like [`Registry::to_json`] but appending extra top-level
    /// sections, each a `(key, already-serialized JSON value)` pair.
    /// Section order follows the argument order; callers keep it
    /// stable.
    pub fn to_json_with_sections(&self, sections: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        json::write_string(&mut out, SCHEMA_VERSION);
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, k);
            out.push(':');
            json::write_string(&mut out, v);
        }
        out.push_str("},\"metrics\":[");
        for (i, m) in self.metrics.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &m.name);
            out.push_str(",\"kind\":");
            json::write_string(&mut out, m.desc.kind.as_str());
            out.push_str(",\"unit\":");
            json::write_string(&mut out, m.desc.unit.as_str());
            out.push_str(",\"description\":");
            json::write_string(&mut out, m.desc.description);
            out.push_str(",\"value\":");
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => json::write_f64(&mut out, *v),
                MetricValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    out.push_str(&h.count().to_string());
                    out.push_str(",\"mean\":");
                    json::write_f64(&mut out, h.mean());
                    out.push_str(",\"max\":");
                    out.push_str(&h.max().to_string());
                    out.push_str(",\"buckets\":[");
                    for (j, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{lo},{hi},{c}]"));
                    }
                    out.push_str("]}");
                }
            }
            out.push('}');
        }
        out.push(']');
        if let Some(epochs) = &self.epochs {
            out.push_str(",\"epochs\":");
            epochs.write_json(&mut out);
        }
        for (key, value) in sections {
            out.push(',');
            json::write_string(&mut out, key);
            out.push(':');
            out.push_str(value);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn metrics_export_in_name_order() {
        let mut r = Registry::new();
        r.counter(&catalog::SIM_CYCLES, 10);
        r.counter(&catalog::SIM_INSTRUCTIONS, 20);
        let names: Vec<&str> = r.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["sim.cycles", "sim.instructions"]);
        let json = r.to_json();
        assert!(json.find("sim.cycles").unwrap() < json.find("sim.instructions").unwrap());
    }

    #[test]
    fn instances_resolve_placeholders() {
        let mut r = Registry::new();
        r.counter_at(&catalog::MEMSYS_DEMAND_MISSES, "l1i", 3);
        assert_eq!(r.counter_value("memsys.l1i.demand_misses"), 3);
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.gauge(&catalog::SIM_INSTRUCTIONS, 1.0);
    }

    #[test]
    fn json_document_is_self_describing() {
        let mut r = Registry::new();
        r.label("core", "iiswc");
        r.gauge(&catalog::SIM_IPC, 1.25);
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"trace-rebase-metrics/v1\""), "{json}");
        assert!(json.contains("\"labels\":{\"core\":\"iiswc\"}"), "{json}");
        assert!(json.contains("\"unit\":\"ratio\""), "{json}");
        assert!(json.contains("\"value\":1.250000"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
    }

    #[test]
    fn histogram_and_epochs_serialize() {
        let mut h = Log2Histogram::new();
        h.record(4);
        let mut r = Registry::new();
        r.histogram(&catalog::SIM_ROB_OCCUPANCY, h);
        let mut e = EpochSeries::new(100, &["cycles"]);
        e.push_row(&[42]);
        r.set_epochs(e);
        let json = r.to_json();
        assert!(json.contains("\"buckets\":[[4,8,1]]"), "{json}");
        assert!(json.contains("\"epochs\":{\"epoch_instructions\":100"), "{json}");
    }

    #[test]
    fn merge_copies_everything() {
        let mut a = Registry::new();
        a.counter(&catalog::SIM_CYCLES, 1);
        let mut b = Registry::new();
        b.counter(&catalog::SIM_INSTRUCTIONS, 2);
        b.label("x", "y");
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.counter_value("sim.instructions"), 2);
        assert!(a.to_json().contains("\"x\":\"y\""));
    }

    #[test]
    fn extra_sections_append_in_order() {
        let r = Registry::new();
        let json = r.to_json_with_sections(&[("attribution", "[1,2]".to_owned())]);
        assert!(json.contains(",\"attribution\":[1,2]}"), "{json}");
    }
}
