//! Minimal deterministic JSON writing (the workspace carries no
//! serializer dependency).

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` with a fixed six-decimal representation.
///
/// Non-finite values (which would not be valid JSON) are written as 0;
/// every exporter in the stack guards its divisions, so this is a
/// belt-and-braces rule, not an expected path.
pub fn write_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        out.push_str(&format!("{value:.6}"));
    } else {
        out.push_str("0.000000");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn string(s: &str) -> String {
        let mut out = String::new();
        write_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), r#""a\"b""#);
        assert_eq!(string("a\\b"), r#""a\\b""#);
        assert_eq!(string("a\nb"), r#""a\nb""#);
        assert_eq!(string("a\u{1}b"), "\"a\\u0001b\"");
    }

    #[test]
    fn floats_are_fixed_precision() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        assert_eq!(out, "1.500000");
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "0.000000");
    }
}
