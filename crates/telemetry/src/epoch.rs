use crate::json;

/// Per-interval snapshots of a fixed set of counters.
///
/// An `EpochSeries` is created with an epoch length (in retired
/// instructions) and a fixed list of series names; the producer then
/// pushes one row of counter *deltas* per completed epoch. The series
/// exports into the metrics document under `"epochs"`, giving
/// downstream consumers (plotting, phase detection, DL-simulator
/// training sets) a structured per-interval signal.
///
/// # Example
///
/// ```
/// use telemetry::EpochSeries;
///
/// let mut epochs = EpochSeries::new(10_000, &["cycles", "l1i_demand_misses"]);
/// epochs.push_row(&[4_000, 12]);
/// epochs.push_row(&[5_500, 90]);
/// assert_eq!(epochs.rows(), 2);
/// assert_eq!(epochs.series("l1i_demand_misses"), Some(&[12, 90][..]));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochSeries {
    epoch_instructions: u64,
    names: Vec<&'static str>,
    columns: Vec<Vec<u64>>,
}

impl EpochSeries {
    /// A series snapshotting every `epoch_instructions` retired
    /// instructions, carrying one column per name.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_instructions` is zero or `names` is empty.
    pub fn new(epoch_instructions: u64, names: &[&'static str]) -> EpochSeries {
        assert!(epoch_instructions > 0, "epoch length must be positive");
        assert!(!names.is_empty(), "an epoch series needs at least one column");
        EpochSeries {
            epoch_instructions,
            names: names.to_vec(),
            columns: vec![Vec::new(); names.len()],
        }
    }

    /// The configured epoch length in retired instructions.
    pub fn epoch_instructions(&self) -> u64 {
        self.epoch_instructions
    }

    /// Completed epochs recorded so far.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Appends one epoch's counter deltas, in column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not have one value per column.
    pub fn push_row(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.columns.len(), "row width must match the column count");
        for (column, value) in self.columns.iter_mut().zip(row) {
            column.push(*value);
        }
    }

    /// The recorded column for `name`, if present.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.names.iter().position(|n| *n == name).map(|i| self.columns[i].as_slice())
    }

    /// Writes the `"epochs"` JSON object (without a key) into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"epoch_instructions\":");
        out.push_str(&self.epoch_instructions.to_string());
        out.push_str(",\"rows\":");
        out.push_str(&self.rows().to_string());
        out.push_str(",\"series\":{");
        for (i, (name, column)) in self.names.iter().zip(&self.columns).enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(out, name);
            out.push_str(":[");
            for (j, v) in column.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_series_round_trip() {
        let mut e = EpochSeries::new(100, &["a", "b"]);
        e.push_row(&[1, 2]);
        e.push_row(&[3, 4]);
        assert_eq!(e.rows(), 2);
        assert_eq!(e.series("a"), Some(&[1, 3][..]));
        assert_eq!(e.series("missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        EpochSeries::new(100, &["a"]).push_row(&[1, 2]);
    }

    #[test]
    fn json_shape() {
        let mut e = EpochSeries::new(50, &["cycles"]);
        e.push_row(&[7]);
        let mut out = String::new();
        e.write_json(&mut out);
        assert_eq!(out, "{\"epoch_instructions\":50,\"rows\":1,\"series\":{\"cycles\":[7]}}");
    }
}
