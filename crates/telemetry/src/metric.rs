use crate::histogram::Log2Histogram;

/// The unit a metric is expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Plain event count.
    Count,
    /// Retired trace records.
    Instructions,
    /// Core clock cycles.
    Cycles,
    /// Dimensionless ratio in `0..=1` (or around 1.0 for speedups).
    Ratio,
    /// Percentage, already scaled to `0..=100`.
    Percent,
    /// Events per 1000 retired instructions (the paper's MPKI scale).
    PerKiloInstructions,
    /// Wall-clock seconds (host timing, not simulated time).
    Seconds,
    /// Millions of retired trace records per wall-clock second (host
    /// simulation throughput).
    Mips,
    /// Bytes on disk or in memory.
    Bytes,
    /// Wall-clock milliseconds (host timing, not simulated time).
    Milliseconds,
}

impl Unit {
    /// The unit's stable spelling in exported documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Instructions => "instructions",
            Unit::Cycles => "cycles",
            Unit::Ratio => "ratio",
            Unit::Percent => "percent",
            Unit::PerKiloInstructions => "per-kilo-instructions",
            Unit::Seconds => "seconds",
            Unit::Mips => "mips",
            Unit::Bytes => "bytes",
            Unit::Milliseconds => "milliseconds",
        }
    }
}

/// What kind of value a metric carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic `u64` event count.
    Counter,
    /// Point-in-time `f64` (ratios, MPKIs, means).
    Gauge,
    /// Log2-bucketed distribution of `u64` samples.
    Histogram,
}

impl Kind {
    /// The kind's stable spelling in exported documents.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A static metric descriptor: the stable dotted name, unit, kind and
/// one-line description.
///
/// All descriptors live in [`crate::catalog`]; registration functions
/// take `&'static Desc`, so a binary can only ever emit metrics that
/// the generated `METRICS.md` reference documents. A name may contain
/// exactly one `{placeholder}` segment for per-instance metrics; fill
/// it with [`Desc::instance`].
#[derive(Debug)]
pub struct Desc {
    /// Stable dotted metric name, e.g. `sim.cache.{level}.demand_misses`.
    pub name: &'static str,
    /// Value kind.
    pub kind: Kind,
    /// Unit of the exported value.
    pub unit: Unit,
    /// One-line human description (used verbatim in `METRICS.md`).
    pub description: &'static str,
}

impl Desc {
    /// `true` when the name carries a `{placeholder}` segment.
    pub fn is_templated(&self) -> bool {
        self.name.contains('{')
    }

    /// The concrete name for one instance of a templated descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor is not templated.
    pub fn instance(&self, instance: &str) -> String {
        let open = self.name.find('{').expect("instance() needs a templated descriptor");
        let close = self.name[open..].find('}').expect("unterminated placeholder") + open;
        format!("{}{}{}", &self.name[..open], instance, &self.name[close + 1..])
    }
}

/// The value payload of one registered metric.
// Registries hold at most a few hundred metrics, so the histogram's
// inline bucket array is cheaper than boxing every access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time float.
    Gauge(f64),
    /// Log2-bucketed distribution.
    Histogram(Log2Histogram),
}

/// One registered metric: a resolved name, its descriptor metadata and
/// the recorded value.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Fully resolved dotted name (placeholders filled in).
    pub name: String,
    /// The descriptor this metric was registered through.
    pub desc: &'static Desc,
    /// Recorded value.
    pub value: MetricValue,
}

#[cfg(test)]
mod tests {
    use super::*;

    static PLAIN: Desc =
        Desc { name: "a.b.c", kind: Kind::Counter, unit: Unit::Count, description: "test" };
    static TEMPLATED: Desc =
        Desc { name: "a.{x}.c", kind: Kind::Counter, unit: Unit::Count, description: "test" };

    #[test]
    fn instance_fills_placeholder() {
        assert!(!PLAIN.is_templated());
        assert!(TEMPLATED.is_templated());
        assert_eq!(TEMPLATED.instance("l1i"), "a.l1i.c");
    }

    #[test]
    #[should_panic(expected = "templated")]
    fn instance_on_plain_desc_panics() {
        PLAIN.instance("x");
    }

    #[test]
    fn unit_and_kind_spellings_are_stable() {
        assert_eq!(Unit::PerKiloInstructions.as_str(), "per-kilo-instructions");
        assert_eq!(Kind::Histogram.as_str(), "histogram");
    }
}
