use std::fmt;

/// Number of buckets: one for zero plus one per power of two of `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts the value `0`; bucket `i` (for `i >= 1`) counts
/// values in `[2^(i-1), 2^i)`, so bucket 64 covers `[2^63, u64::MAX]`.
/// The whole `u64` range is representable — recording `0`, powers of
/// two and `u64::MAX` are all well-defined (see the tests).
///
/// # Example
///
/// ```
/// use telemetry::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(0); // bucket 0
/// h.record(1); // bucket 1: [1, 2)
/// h.record(2); // bucket 2: [2, 4)
/// h.record(3); // bucket 2
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_count(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram { buckets: [0; BUCKETS], total: 0, sum: 0, max: 0 }
    }

    /// The bucket index `value` falls into.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// Lower (inclusive) and upper (exclusive, saturating) bounds of
    /// bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 65`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < BUCKETS, "bucket index out of range");
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Log2Histogram::bucket_of(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 65`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Iterates the non-empty buckets as `(lower, upper, count)` with
    /// `lower` inclusive and `upper` exclusive (saturating at
    /// `u64::MAX` for the last bucket).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, c)| **c > 0).map(|(i, c)| {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            (lo, hi, *c)
        })
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1} max={}", self.total, self.mean(), self.max)?;
        for (lo, hi, c) in self.nonzero_buckets() {
            write!(f, " [{lo},{hi}):{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn powers_of_two_open_their_own_bucket() {
        // 2^k is the *lowest* value of bucket k+1: [2^k, 2^(k+1)).
        for k in 0..64u32 {
            let v = 1u64 << k;
            assert_eq!(Log2Histogram::bucket_of(v), k as usize + 1, "2^{k}");
            if v > 1 {
                assert_eq!(Log2Histogram::bucket_of(v - 1), k as usize, "2^{k}-1");
            }
        }
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket() {
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(64), 1);
        assert_eq!(h.max(), u64::MAX);
        let (lo, hi) = Log2Histogram::bucket_bounds(64);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn bucket_bounds_cover_the_line_without_gaps() {
        let mut expected_lo = 0u64;
        for i in 0..65 {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts where the last ended");
            assert!(hi > lo);
            expected_lo = hi;
        }
    }

    #[test]
    fn mean_max_and_merge() {
        let mut a = Log2Histogram::new();
        a.record_n(4, 3);
        let mut b = Log2Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 100);
        assert!((a.mean() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let mut h = Log2Histogram::new();
        h.record_n(42, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h, Log2Histogram::new());
    }

    #[test]
    fn display_lists_nonzero_buckets() {
        let mut h = Log2Histogram::new();
        h.record(5);
        let text = h.to_string();
        assert!(text.contains("[4,8):1"), "{text}");
    }
}
