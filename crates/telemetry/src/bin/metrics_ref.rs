//! Prints the `METRICS.md` metrics reference to stdout.
//!
//! Regenerate the committed document with:
//!
//! ```text
//! cargo run -p telemetry --bin metrics_ref > METRICS.md
//! ```
//!
//! CI diffs the committed file against this dump, so the reference can
//! never drift from the catalog.

fn main() {
    print!("{}", telemetry::catalog::reference_markdown());
}
