//! The packetizer: turns an execution stream into a `.etrace` file.

use std::io::Write;

use crate::program::Program;
use crate::varint::{put_sleb, put_uleb};
use crate::{flat_record_bytes, EtraceError, EtraceStats, TraceItem, MAGIC, VERSION};

/// Packet type bytes shared by the writer and reader.
pub(crate) mod packet {
    /// Synchronization point: item index, absolute pc, context.
    pub const SYNC: u8 = 0x01;
    /// Branch map: count byte plus LSB-first outcome bitmap.
    pub const BRANCH: u8 = 0x02;
    /// Indirect-branch target as a signed delta to the address base.
    pub const ADDR: u8 = 0x03;
    /// Context change: item index, new context.
    pub const CTX: u8 = 0x05;
}

/// Default instructions between SYNC packets.
const DEFAULT_SYNC_EVERY: u64 = 4096;

/// Encodes [`TraceItem`]s against a [`Program`] into the `.etrace`
/// packet format, buffering the streams and writing the file on
/// [`finish`](EtraceWriter::finish).
///
/// The writer runs the same differential state machine the reader
/// does — branch outcomes accumulate into branch-map bitmaps that are
/// flushed before any packet that must stay in consumption order,
/// indirect targets and data addresses are deltas against their
/// channel's previous value, and every SYNC rebases the address base.
#[derive(Debug)]
pub struct EtraceWriter<W: Write> {
    inner: W,
    program: Program,
    header: Vec<u8>,
    ctrl: Vec<u8>,
    mem: Vec<u8>,
    hint: usize,
    pending_bits: u64,
    pending_count: u8,
    addr_base: u64,
    mem_base: u64,
    ctx: u64,
    sync_every: u64,
    stats: EtraceStats,
}

impl<W: Write> EtraceWriter<W> {
    /// Starts a trace of `program` into `inner`. The program table is
    /// embedded in the file, so readers need nothing else.
    ///
    /// # Errors
    ///
    /// None today; the signature reserves the right to validate.
    pub fn new(inner: W, program: &Program) -> Result<EtraceWriter<W>, EtraceError> {
        let mut header = Vec::with_capacity(64 + program.len() * 8);
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        program.encode(&mut header);
        Ok(EtraceWriter {
            inner,
            program: program.clone(),
            header,
            ctrl: Vec::new(),
            mem: Vec::new(),
            hint: 0,
            pending_bits: 0,
            pending_count: 0,
            addr_base: 0,
            mem_base: 0,
            ctx: 0,
            sync_every: DEFAULT_SYNC_EVERY,
            stats: EtraceStats::default(),
        })
    }

    /// Sets the SYNC packet period in instructions (minimum 1).
    #[must_use]
    pub fn with_sync_every(mut self, every: u64) -> EtraceWriter<W> {
        self.sync_every = every.max(1);
        self
    }

    /// Switches the context id; emits a CTX packet at the next item
    /// boundary position if it changed.
    pub fn set_context(&mut self, ctx: u64) {
        if ctx == self.ctx {
            return;
        }
        self.flush_bits();
        self.ctx = ctx;
        self.ctrl.push(packet::CTX);
        put_uleb(&mut self.ctrl, self.stats.items);
        put_uleb(&mut self.ctrl, ctx);
        self.stats.packets += 1;
        self.stats.ctx_packets += 1;
    }

    /// Encodes one retired instruction.
    ///
    /// # Errors
    ///
    /// [`EtraceError::UnknownPc`] if `item.pc` is not in the program
    /// table.
    pub fn write(&mut self, item: &TraceItem) -> Result<(), EtraceError> {
        let Some(meta) = self.program.lookup_cached(&mut self.hint, item.pc) else {
            let offset = (self.header.len() + self.ctrl.len()) as u64;
            return Err(EtraceError::UnknownPc { pc: item.pc, offset });
        };
        let op = meta.op;
        if self.stats.items.is_multiple_of(self.sync_every) {
            self.flush_bits();
            self.ctrl.push(packet::SYNC);
            put_uleb(&mut self.ctrl, self.stats.items);
            put_uleb(&mut self.ctrl, item.pc);
            put_uleb(&mut self.ctrl, self.ctx);
            self.addr_base = item.pc;
            self.stats.packets += 1;
            self.stats.sync_packets += 1;
        }
        if matches!(op, crate::MetaOp::CondBranch { .. }) {
            if item.taken {
                self.pending_bits |= 1 << self.pending_count;
            }
            self.pending_count += 1;
            if self.pending_count == 64 {
                self.flush_bits();
            }
        } else if op.is_indirect() {
            self.flush_bits();
            self.ctrl.push(packet::ADDR);
            put_sleb(&mut self.ctrl, item.target.wrapping_sub(self.addr_base) as i64);
            self.addr_base = item.target;
            self.stats.packets += 1;
            self.stats.addr_packets += 1;
        }
        if op.is_memory() {
            put_sleb(&mut self.mem, item.mem_addr.wrapping_sub(self.mem_base) as i64);
            self.mem_base = item.mem_addr;
            self.stats.mem_addresses += 1;
        }
        self.stats.flat_bytes += flat_record_bytes(op);
        self.stats.items += 1;
        Ok(())
    }

    /// Instructions written so far.
    pub fn items_written(&self) -> u64 {
        self.stats.items
    }

    /// Flushes accumulated branch outcomes as one BRANCH-MAP packet.
    fn flush_bits(&mut self) {
        if self.pending_count == 0 {
            return;
        }
        self.ctrl.push(packet::BRANCH);
        self.ctrl.push(self.pending_count);
        for byte in 0..self.pending_count.div_ceil(8) {
            self.ctrl.push((self.pending_bits >> (8 * byte)) as u8);
        }
        self.pending_bits = 0;
        self.pending_count = 0;
        self.stats.packets += 1;
        self.stats.branch_packets += 1;
    }

    /// Flushes pending outcomes, assembles the file, and writes it.
    /// Returns the inner writer and the final counters.
    ///
    /// # Errors
    ///
    /// I/O errors from the inner writer.
    pub fn finish(mut self) -> Result<(W, EtraceStats), EtraceError> {
        self.flush_bits();
        let mut framing = Vec::with_capacity(24);
        put_uleb(&mut framing, self.ctrl.len() as u64);
        let mut mem_framing = Vec::with_capacity(12);
        put_uleb(&mut mem_framing, self.mem.len() as u64);
        let mut tail = Vec::with_capacity(12);
        put_uleb(&mut tail, self.stats.items);

        self.inner.write_all(&self.header)?;
        self.inner.write_all(&framing)?;
        self.inner.write_all(&self.ctrl)?;
        self.inner.write_all(&mem_framing)?;
        self.inner.write_all(&self.mem)?;
        self.inner.write_all(&tail)?;
        self.inner.flush()?;

        self.stats.stream_bytes = (self.ctrl.len() + self.mem.len()) as u64;
        self.stats.file_bytes = (self.header.len()
            + framing.len()
            + self.ctrl.len()
            + mem_framing.len()
            + self.mem.len()
            + tail.len()) as u64;
        Ok((self.inner, self.stats))
    }
}
