//! The decoder: reconstructs the instruction stream from a `.etrace`
//! file by walking the embedded program image and consuming packets on
//! demand.

use std::io::Read;

use crate::program::{MetaInstr, Program};
use crate::varint::{get_sleb, get_uleb};
use crate::writer::packet;
use crate::{flat_record_bytes, EtraceError, EtraceStats, TraceItem, MAGIC, VERSION};

/// One reconstructed instruction: the dynamic record plus the static
/// metadata it resolved against, so converters need no second lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The dynamic execution record.
    pub item: TraceItem,
    /// The static program-image entry for `item.pc`.
    pub meta: MetaInstr,
}

/// Decodes a `.etrace` file back into [`TraceItem`]s.
///
/// Construction slurps and frames the whole file — magic, program
/// table, stream lengths — so any truncation is caught up front with an
/// absolute byte offset. [`read`](EtraceReader::read) then advances a
/// program-image walker one instruction per call: conditional branches
/// pop one bit from the current branch map, indirect branches consume
/// an ADDR packet, loads and stores consume one memory-stream delta,
/// and everything else follows the static image for free. After the
/// last item, both streams must be exactly exhausted.
#[derive(Debug)]
pub struct EtraceReader {
    data: Vec<u8>,
    program: Program,
    ctrl_cursor: usize,
    ctrl_end: usize,
    mem_cursor: usize,
    mem_end: usize,
    item_count: u64,
    pc: u64,
    synced: bool,
    ctx: u64,
    hint: usize,
    addr_base: u64,
    mem_base: u64,
    bit_queue: u64,
    bits_avail: u8,
    stats: EtraceStats,
}

impl EtraceReader {
    /// Reads and frames a complete `.etrace` stream from `inner`.
    ///
    /// # Errors
    ///
    /// [`EtraceError::BadMagic`], [`EtraceError::UnsupportedVersion`],
    /// [`EtraceError::Truncated`], [`EtraceError::TrailingData`], or
    /// [`EtraceError::InvalidProgram`] when the header does not frame;
    /// [`EtraceError::Io`] from the inner reader.
    pub fn new<R: Read>(mut inner: R) -> Result<EtraceReader, EtraceError> {
        let mut data = Vec::new();
        inner.read_to_end(&mut data)?;
        if data.len() < MAGIC.len() {
            return Err(EtraceError::Truncated { offset: data.len() as u64 });
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(EtraceError::BadMagic { offset: 0 });
        }
        let Some(&version) = data.get(MAGIC.len()) else {
            return Err(EtraceError::Truncated { offset: MAGIC.len() as u64 });
        };
        if version != VERSION {
            return Err(EtraceError::UnsupportedVersion { version, offset: MAGIC.len() as u64 });
        }
        let mut cursor = MAGIC.len() + 1;
        let program = Program::decode(&data, &mut cursor, 0)?;
        let ctrl_len = get_uleb(&data, &mut cursor, 0)? as usize;
        let ctrl_cursor = cursor;
        let Some(ctrl_end) = ctrl_cursor.checked_add(ctrl_len).filter(|&e| e <= data.len()) else {
            return Err(EtraceError::Truncated { offset: data.len() as u64 });
        };
        cursor = ctrl_end;
        let mem_len = get_uleb(&data, &mut cursor, 0)? as usize;
        let mem_cursor = cursor;
        let Some(mem_end) = mem_cursor.checked_add(mem_len).filter(|&e| e <= data.len()) else {
            return Err(EtraceError::Truncated { offset: data.len() as u64 });
        };
        cursor = mem_end;
        let item_count = get_uleb(&data, &mut cursor, 0)?;
        if cursor != data.len() {
            return Err(EtraceError::TrailingData { offset: cursor as u64 });
        }
        let stats = EtraceStats {
            stream_bytes: (ctrl_len + mem_len) as u64,
            file_bytes: data.len() as u64,
            ..EtraceStats::default()
        };
        Ok(EtraceReader {
            data,
            program,
            ctrl_cursor,
            ctrl_end,
            mem_cursor,
            mem_end,
            item_count,
            pc: 0,
            synced: false,
            ctx: 0,
            hint: 0,
            addr_base: 0,
            mem_base: 0,
            bit_queue: 0,
            bits_avail: 0,
            stats,
        })
    }

    /// The embedded static program image.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Counters accumulated so far (complete once `read` returns
    /// `None`).
    pub fn stats(&self) -> EtraceStats {
        self.stats
    }

    /// Total instructions the file claims to hold.
    pub fn item_count(&self) -> u64 {
        self.item_count
    }

    /// The current context id (from the latest SYNC or CTX packet).
    pub fn context(&self) -> u64 {
        self.ctx
    }

    /// Reconstructs the next instruction, or `None` after the last.
    ///
    /// # Errors
    ///
    /// Any [`EtraceError`] describing where the stream stopped making
    /// sense, with an absolute byte offset.
    pub fn read(&mut self) -> Result<Option<Decoded>, EtraceError> {
        if self.stats.items == self.item_count {
            return self.finish().map(|()| None);
        }
        self.consume_boundary_packets()?;
        if !self.synced {
            return Err(EtraceError::MissingSync { offset: self.ctrl_cursor as u64 });
        }
        let Some(meta) = self.program.lookup_cached(&mut self.hint, self.pc) else {
            return Err(EtraceError::UnknownPc { pc: self.pc, offset: self.ctrl_cursor as u64 });
        };
        let meta = *meta;
        let mut item =
            TraceItem { pc: self.pc, taken: false, target: meta.fallthrough(), mem_addr: 0 };
        match meta.op {
            crate::MetaOp::CondBranch { target } => {
                item.taken = self.next_bit()?;
                if item.taken {
                    item.target = target;
                }
            }
            crate::MetaOp::Jump { target } | crate::MetaOp::Call { target } => {
                item.target = target;
            }
            op if op.is_indirect() => item.target = self.next_addr()?,
            _ => {}
        }
        if meta.op.is_memory() {
            item.mem_addr = self.next_mem()?;
            self.stats.mem_addresses += 1;
        }
        self.pc = item.target;
        self.stats.items += 1;
        self.stats.flat_bytes += flat_record_bytes(meta.op);
        Ok(Some(Decoded { item, meta }))
    }

    /// Consumes SYNC/CTX packets whose item index equals the current
    /// position; leaves packets for future boundaries in place.
    fn consume_boundary_packets(&mut self) -> Result<(), EtraceError> {
        while self.ctrl_cursor < self.ctrl_end {
            let ty = self.data[self.ctrl_cursor];
            if ty != packet::SYNC && ty != packet::CTX {
                break;
            }
            let type_offset = self.ctrl_cursor as u64;
            let buf = &self.data[..self.ctrl_end];
            let mut probe = self.ctrl_cursor + 1;
            let index = get_uleb(buf, &mut probe, 0)?;
            if index != self.stats.items {
                if index < self.stats.items {
                    return Err(EtraceError::InvalidPacket { value: ty, offset: type_offset });
                }
                break;
            }
            if ty == packet::SYNC {
                let pc = get_uleb(buf, &mut probe, 0)?;
                let ctx = get_uleb(buf, &mut probe, 0)?;
                if !self.synced {
                    self.synced = true;
                    self.pc = pc;
                } else if self.pc != pc {
                    self.stats.sync_recoveries += 1;
                    self.pc = pc;
                }
                self.addr_base = pc;
                self.ctx = ctx;
                self.stats.sync_packets += 1;
            } else {
                self.ctx = get_uleb(buf, &mut probe, 0)?;
                self.stats.ctx_packets += 1;
            }
            self.stats.packets += 1;
            self.ctrl_cursor = probe;
        }
        Ok(())
    }

    /// Pops the next conditional-branch outcome, refilling the bit
    /// queue from a BRANCH-MAP packet when empty.
    fn next_bit(&mut self) -> Result<bool, EtraceError> {
        if self.bits_avail == 0 {
            let (ty, type_offset) = self.next_ctrl_byte()?;
            if ty != packet::BRANCH {
                return Err(EtraceError::InvalidPacket { value: ty, offset: type_offset });
            }
            let (count, count_offset) = self.next_ctrl_byte()?;
            if count == 0 || count > 64 {
                return Err(EtraceError::InvalidPacket { value: count, offset: count_offset });
            }
            let mut bits = 0u64;
            for byte in 0..count.div_ceil(8) {
                let (b, _) = self.next_ctrl_byte()?;
                bits |= u64::from(b) << (8 * byte);
            }
            self.bit_queue = bits;
            self.bits_avail = count;
            self.stats.packets += 1;
            self.stats.branch_packets += 1;
        }
        let bit = self.bit_queue & 1 == 1;
        self.bit_queue >>= 1;
        self.bits_avail -= 1;
        Ok(bit)
    }

    /// Consumes an ADDR packet: the indirect target as a signed delta
    /// against the address base, which it then rebases.
    fn next_addr(&mut self) -> Result<u64, EtraceError> {
        let (ty, type_offset) = self.next_ctrl_byte()?;
        if ty != packet::ADDR {
            return Err(EtraceError::InvalidPacket { value: ty, offset: type_offset });
        }
        let buf = &self.data[..self.ctrl_end];
        let delta = get_sleb(buf, &mut self.ctrl_cursor, 0)?;
        let target = self.addr_base.wrapping_add(delta as u64);
        self.addr_base = target;
        self.stats.packets += 1;
        self.stats.addr_packets += 1;
        Ok(target)
    }

    /// Consumes one memory-stream delta and returns the absolute data
    /// address.
    fn next_mem(&mut self) -> Result<u64, EtraceError> {
        let buf = &self.data[..self.mem_end];
        let delta = get_sleb(buf, &mut self.mem_cursor, 0)?;
        let addr = self.mem_base.wrapping_add(delta as u64);
        self.mem_base = addr;
        Ok(addr)
    }

    /// Takes one control-stream byte, reporting its absolute offset.
    fn next_ctrl_byte(&mut self) -> Result<(u8, u64), EtraceError> {
        if self.ctrl_cursor >= self.ctrl_end {
            return Err(EtraceError::Truncated { offset: self.ctrl_cursor as u64 });
        }
        let offset = self.ctrl_cursor as u64;
        let byte = self.data[self.ctrl_cursor];
        self.ctrl_cursor += 1;
        Ok((byte, offset))
    }

    /// End-of-stream validation: trailing CTX packets are consumed,
    /// then both streams and the bit queue must be exactly exhausted.
    fn finish(&mut self) -> Result<(), EtraceError> {
        self.consume_boundary_packets()?;
        if self.bits_avail != 0 || self.ctrl_cursor != self.ctrl_end {
            return Err(EtraceError::TrailingData { offset: self.ctrl_cursor as u64 });
        }
        if self.mem_cursor != self.mem_end {
            return Err(EtraceError::TrailingData { offset: self.mem_cursor as u64 });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varint::put_uleb;
    use crate::writer::EtraceWriter;
    use crate::{MetaOp, RV_REG_NONE};

    fn kernel_program() -> Program {
        Program::new(vec![
            MetaInstr {
                pc: 0x1000,
                size: 4,
                op: MetaOp::Load { size: 8 },
                rd: 5,
                rs1: 6,
                rs2: RV_REG_NONE,
            },
            MetaInstr { pc: 0x1004, size: 2, op: MetaOp::Int, rd: 7, rs1: 5, rs2: RV_REG_NONE },
            MetaInstr {
                pc: 0x1006,
                size: 4,
                op: MetaOp::Store { size: 8 },
                rd: RV_REG_NONE,
                rs1: 6,
                rs2: 7,
            },
            MetaInstr {
                pc: 0x100a,
                size: 4,
                op: MetaOp::CondBranch { target: 0x1000 },
                rd: RV_REG_NONE,
                rs1: 7,
                rs2: 8,
            },
            MetaInstr { pc: 0x100e, size: 4, op: MetaOp::IndCall, rd: 1, rs1: 9, rs2: RV_REG_NONE },
            MetaInstr { pc: 0x2000, size: 4, op: MetaOp::Int, rd: 3, rs1: 3, rs2: 4 },
            MetaInstr {
                pc: 0x2004,
                size: 4,
                op: MetaOp::Ret,
                rd: RV_REG_NONE,
                rs1: 1,
                rs2: RV_REG_NONE,
            },
        ])
        .unwrap()
    }

    /// Runs the kernel: `iters` loop trips, then an indirect call to
    /// 0x2000 and a return to the loop head.
    fn kernel_items(iters: usize) -> Vec<TraceItem> {
        let mut items = Vec::new();
        for trip in 0..iters {
            let base = 0x9000_0000u64 + (trip as u64) * 64;
            items.push(TraceItem { pc: 0x1000, taken: false, target: 0x1004, mem_addr: base });
            items.push(TraceItem { pc: 0x1004, taken: false, target: 0x1006, mem_addr: 0 });
            items.push(TraceItem { pc: 0x1006, taken: false, target: 0x100a, mem_addr: base + 8 });
            let last = trip + 1 == iters;
            items.push(TraceItem {
                pc: 0x100a,
                taken: !last,
                target: if last { 0x100e } else { 0x1000 },
                mem_addr: 0,
            });
        }
        items.push(TraceItem { pc: 0x100e, taken: false, target: 0x2000, mem_addr: 0 });
        items.push(TraceItem { pc: 0x2000, taken: false, target: 0x2004, mem_addr: 0 });
        items.push(TraceItem { pc: 0x2004, taken: false, target: 0x1000, mem_addr: 0 });
        items
    }

    fn encode(program: &Program, items: &[TraceItem], sync_every: u64) -> (Vec<u8>, EtraceStats) {
        let mut writer =
            EtraceWriter::new(Vec::new(), program).unwrap().with_sync_every(sync_every);
        for item in items {
            writer.write(item).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn round_trip_with_branches_memory_and_indirects() {
        let program = kernel_program();
        let items = kernel_items(100);
        for sync_every in [3, 64, 4096] {
            let (bytes, wstats) = encode(&program, &items, sync_every);
            let mut reader = EtraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
            assert_eq!(reader.item_count(), items.len() as u64);
            let mut back = Vec::new();
            while let Some(decoded) = reader.read().unwrap() {
                assert_eq!(decoded.meta.pc, decoded.item.pc);
                back.push(decoded.item);
            }
            assert_eq!(back, items, "sync_every={sync_every}");
            let rstats = reader.stats();
            assert_eq!(rstats.items, wstats.items);
            assert_eq!(rstats.packets, wstats.packets);
            assert_eq!(rstats.mem_addresses, wstats.mem_addresses);
            assert_eq!(rstats.flat_bytes, wstats.flat_bytes);
            assert_eq!(rstats.file_bytes, wstats.file_bytes);
            assert_eq!(rstats.sync_recoveries, 0);
        }
    }

    #[test]
    fn looping_kernel_compresses_well_past_three_to_one() {
        let program = kernel_program();
        let items = kernel_items(2000);
        let (_, stats) = encode(&program, &items, 4096);
        assert!(
            stats.compression_ratio() > 3.0,
            "ratio {:.2} (bytes/insn {:.3})",
            stats.compression_ratio(),
            stats.bytes_per_instruction()
        );
    }

    #[test]
    fn every_strict_prefix_fails_loudly() {
        let program = kernel_program();
        let (bytes, _) = encode(&program, &kernel_items(4), 4096);
        for cut in 0..bytes.len() {
            let result = EtraceReader::new(std::io::Cursor::new(&bytes[..cut]));
            assert!(result.is_err(), "prefix of {cut}/{} bytes framed", bytes.len());
        }
    }

    #[test]
    fn trailing_byte_is_rejected_at_open() {
        let program = kernel_program();
        let (mut bytes, _) = encode(&program, &kernel_items(4), 4096);
        bytes.push(0);
        assert!(matches!(
            EtraceReader::new(std::io::Cursor::new(&bytes[..])),
            Err(EtraceError::TrailingData { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_report_position() {
        let program = kernel_program();
        let (bytes, _) = encode(&program, &kernel_items(2), 4096);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            EtraceReader::new(std::io::Cursor::new(&wrong_magic[..])),
            Err(EtraceError::BadMagic { offset: 0 })
        ));
        let mut wrong_version = bytes;
        wrong_version[4] = 99;
        assert!(matches!(
            EtraceReader::new(std::io::Cursor::new(&wrong_version[..])),
            Err(EtraceError::UnsupportedVersion { version: 99, offset: 4 })
        ));
    }

    #[test]
    fn stream_without_leading_sync_is_rejected() {
        let program = kernel_program();
        let (bytes, _) = encode(&program, &kernel_items(2), 4096);
        // Locate the control stream (magic + version + program table +
        // length varint) and corrupt its leading SYNC into a BRANCH.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.push(VERSION);
        program.encode(&mut header);
        let mut cursor = header.len();
        crate::varint::get_uleb(&bytes, &mut cursor, 0).unwrap();
        assert_eq!(bytes[cursor], packet::SYNC);
        let mut mutated = bytes.clone();
        mutated[cursor] = packet::BRANCH;
        let mut reader = EtraceReader::new(std::io::Cursor::new(&mutated[..])).unwrap();
        assert!(matches!(reader.read(), Err(EtraceError::MissingSync { .. })));
    }

    #[test]
    fn sync_pc_mismatch_counts_a_recovery_and_rebases() {
        let program = Program::new(
            (0..5)
                .map(|i| MetaInstr {
                    pc: 0x1000 + 4 * i,
                    size: 4,
                    op: MetaOp::Int,
                    rd: 1,
                    rs1: 2,
                    rs2: 3,
                })
                .collect(),
        )
        .unwrap();
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.push(VERSION);
        program.encode(&mut file);
        let mut ctrl = Vec::new();
        // SYNC at item 0 starting at 0x1000; the walker then expects
        // 0x1008 at item 2 but a SYNC claims 0x100c — a recovery.
        for (index, pc) in [(0u64, 0x1000u64), (2, 0x100c)] {
            ctrl.push(packet::SYNC);
            put_uleb(&mut ctrl, index);
            put_uleb(&mut ctrl, pc);
            put_uleb(&mut ctrl, 0);
        }
        put_uleb(&mut file, ctrl.len() as u64);
        file.extend_from_slice(&ctrl);
        put_uleb(&mut file, 0);
        put_uleb(&mut file, 4);
        let mut reader = EtraceReader::new(std::io::Cursor::new(&file[..])).unwrap();
        let mut pcs = Vec::new();
        while let Some(decoded) = reader.read().unwrap() {
            pcs.push(decoded.item.pc);
        }
        assert_eq!(pcs, vec![0x1000, 0x1004, 0x100c, 0x1010]);
        assert_eq!(reader.stats().sync_recoveries, 1);
    }

    #[test]
    fn context_changes_round_trip() {
        let program = kernel_program();
        let items = kernel_items(3);
        let mut writer = EtraceWriter::new(Vec::new(), &program).unwrap();
        for (index, item) in items.iter().enumerate() {
            if index == 6 {
                writer.set_context(42);
            }
            writer.write(item).unwrap();
        }
        let (bytes, wstats) = writer.finish().unwrap();
        assert_eq!(wstats.ctx_packets, 1);
        let mut reader = EtraceReader::new(std::io::Cursor::new(&bytes[..])).unwrap();
        let mut ctx_at_six = None;
        let mut index = 0u64;
        while let Some(_decoded) = reader.read().unwrap() {
            if index == 6 {
                ctx_at_six = Some(reader.context());
            }
            index += 1;
        }
        assert_eq!(reader.context(), 42);
        assert_eq!(ctx_at_six, Some(42));
        assert_eq!(reader.stats().ctx_packets, 1);
    }
}
