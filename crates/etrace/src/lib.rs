//! RISC-V E-Trace-style branch-trace encoding and reconstruction.
//!
//! Processor trace on RISC-V ("Efficient Trace for RISC-V", see
//! PAPERS.md) does not record one fat record per retired instruction
//! the way CVP-1 or ChampSim traces do. The encoder assumes the decoder
//! holds the **static program image** and emits only what execution
//! decides at run time: conditional branch outcomes (packed into
//! branch-map bitmaps), the targets of indirect jumps (as differential
//! compressed addresses), and periodic synchronization points. The
//! decoder walks the program image instruction by instruction,
//! consuming a packet only when the static image cannot tell it where
//! execution went next. The result is a trace measured in *bits* per
//! instruction instead of tens of bytes.
//!
//! This crate implements that scheme end to end, plus one extension the
//! downstream cache model needs: a second packet stream carrying
//! differentially encoded data addresses for loads and stores (real
//! E-Trace leaves data addresses to a separate data-trace channel; we
//! ship both channels in one `.etrace` file).
//!
//! # File layout
//!
//! ```text
//! "ETRC" magic · version byte
//! program table      (instruction metadata: pc, size, op, registers)
//! control stream     (SYNC / BRANCH-MAP / ADDR / CTX packets)
//! memory stream      (one signed-LEB address delta per load/store)
//! item count         (total instructions, validates clean EOF)
//! ```
//!
//! All integers are LEB128 variable-length; addresses in ADDR packets
//! and the memory stream are signed deltas against the previous value
//! of their channel, so strided and looping access patterns cost one or
//! two bytes per event.
//!
//! # Data flow
//!
//! ```text
//!  Program + execution items          .etrace file           reconstruction
//! ┌──────────────────────────┐   ┌──────────────────┐   ┌──────────────────────┐
//! │ workloads::riscv         │──►│ EtraceWriter     │──►│ EtraceReader         │
//! │ (Program, Vec<TraceItem>)│   │ packetize + LEB  │   │ walk program image,  │
//! └──────────────────────────┘   └──────────────────┘   │ consume packets on   │
//!                                                       │ demand → TraceItem   │
//!                                                       └──────────────────────┘
//! ```
//!
//! # Example
//!
//! ```
//! use etrace::{EtraceReader, EtraceWriter, MetaInstr, MetaOp, Program, TraceItem, RV_REG_NONE};
//!
//! // A two-instruction loop: an ALU op, then a backward branch to it.
//! let program = Program::new(vec![
//!     MetaInstr { pc: 0x1000, size: 4, op: MetaOp::Int, rd: 5, rs1: 6, rs2: RV_REG_NONE },
//!     MetaInstr { pc: 0x1004, size: 4, op: MetaOp::CondBranch { target: 0x1000 },
//!                 rd: RV_REG_NONE, rs1: 5, rs2: 6 },
//! ])
//! .unwrap();
//! let items = vec![
//!     TraceItem { pc: 0x1000, taken: false, target: 0x1004, mem_addr: 0 },
//!     TraceItem { pc: 0x1004, taken: true, target: 0x1000, mem_addr: 0 },
//!     TraceItem { pc: 0x1000, taken: false, target: 0x1004, mem_addr: 0 },
//!     TraceItem { pc: 0x1004, taken: false, target: 0x1008, mem_addr: 0 },
//! ];
//! let mut writer = EtraceWriter::new(Vec::new(), &program).unwrap();
//! for item in &items {
//!     writer.write(item).unwrap();
//! }
//! let (bytes, stats) = writer.finish().unwrap();
//! assert_eq!(stats.items, 4);
//!
//! let mut reader = EtraceReader::new(std::io::Cursor::new(bytes)).unwrap();
//! let mut back = Vec::new();
//! while let Some(decoded) = reader.read().unwrap() {
//!     back.push(decoded.item);
//! }
//! assert_eq!(back, items);
//! ```

#![warn(missing_docs)]

mod error;
mod program;
mod reader;
mod varint;
mod writer;

pub use error::EtraceError;
pub use program::{MetaInstr, MetaOp, Program, RV_REG_NONE};
pub use reader::{Decoded, EtraceReader};
pub use writer::EtraceWriter;

/// File extension for E-Trace branch-trace files.
pub const ETRACE_EXT: &str = "etrace";

/// The file magic ("ETRC").
pub const MAGIC: [u8; 4] = *b"ETRC";

/// Current format version.
pub const VERSION: u8 = 1;

/// One retired instruction, as the generator records it and the decoder
/// reconstructs it.
///
/// `target` is always the program counter of the *next* retired
/// instruction — `pc + size` for straight-line code and not-taken
/// branches, the branch/jump target otherwise — so a round trip through
/// the packet stream can be checked by plain equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceItem {
    /// Program counter of this instruction.
    pub pc: u64,
    /// Conditional-branch outcome (`false` for everything else).
    pub taken: bool,
    /// Program counter of the next retired instruction.
    pub target: u64,
    /// Effective data address for loads and stores (`0` otherwise).
    pub mem_addr: u64,
}

/// Volume and event counters for one encoded or decoded stream.
///
/// The writer fills one in as it packetizes; the reader accumulates an
/// identical set while reconstructing, plus `sync_recoveries` for SYNC
/// packets that disagreed with its walker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EtraceStats {
    /// Instructions encoded or reconstructed.
    pub items: u64,
    /// Control-stream packets (SYNC + BRANCH-MAP + ADDR + CTX).
    pub packets: u64,
    /// SYNC packets.
    pub sync_packets: u64,
    /// BRANCH-MAP packets.
    pub branch_packets: u64,
    /// ADDR packets (indirect-branch targets).
    pub addr_packets: u64,
    /// CTX packets (context changes).
    pub ctx_packets: u64,
    /// Memory-stream address deltas (one per load/store).
    pub mem_addresses: u64,
    /// SYNC packets whose pc disagreed with the decoder's walker,
    /// forcing a rebase. Always `0` on the writer side and for any
    /// stream this crate produced.
    pub sync_recoveries: u64,
    /// Bytes in the control and memory streams (the per-instruction
    /// payload, excluding the program table and framing).
    pub stream_bytes: u64,
    /// Total file bytes, including magic, program table, and framing.
    pub file_bytes: u64,
    /// Bytes the same execution would occupy as flat per-instruction
    /// records (see [`flat_record_bytes`]) — the compression baseline.
    pub flat_bytes: u64,
}

impl EtraceStats {
    /// Encoded file bytes per traced instruction.
    pub fn bytes_per_instruction(&self) -> f64 {
        if self.items == 0 {
            return 0.0;
        }
        self.file_bytes as f64 / self.items as f64
    }

    /// Flat-record bytes over total encoded file bytes.
    pub fn compression_ratio(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        self.flat_bytes as f64 / self.file_bytes as f64
    }
}

/// Bytes one instruction would occupy in a flat, uncompressed
/// per-instruction record stream: 8 (pc) + 1 (kind) for every
/// instruction, plus 9 (target + outcome) for branch-class ops and
/// 9 (address + width) for memory ops.
///
/// This is the denominator-free baseline [`EtraceStats::flat_bytes`]
/// accumulates and `convert_bench` reports compression against.
pub fn flat_record_bytes(op: MetaOp) -> u64 {
    let base = 9;
    match op {
        MetaOp::Int | MetaOp::Mul | MetaOp::Fp => base,
        MetaOp::Load { .. } | MetaOp::Store { .. } => base + 9,
        MetaOp::CondBranch { .. }
        | MetaOp::Jump { .. }
        | MetaOp::Call { .. }
        | MetaOp::IndJump
        | MetaOp::IndCall
        | MetaOp::Ret => base + 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_baseline_distinguishes_classes() {
        assert_eq!(flat_record_bytes(MetaOp::Int), 9);
        assert_eq!(flat_record_bytes(MetaOp::Load { size: 8 }), 18);
        assert_eq!(flat_record_bytes(MetaOp::CondBranch { target: 0 }), 18);
    }

    #[test]
    fn stats_ratios_guard_division_by_zero() {
        let stats = EtraceStats::default();
        assert_eq!(stats.bytes_per_instruction(), 0.0);
        assert_eq!(stats.compression_ratio(), 0.0);
        let stats = EtraceStats { items: 4, file_bytes: 20, flat_bytes: 80, ..stats };
        assert_eq!(stats.bytes_per_instruction(), 5.0);
        assert_eq!(stats.compression_ratio(), 4.0);
    }
}
