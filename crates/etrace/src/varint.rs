//! LEB128 variable-length integers over in-memory buffers.
//!
//! Decoders take the buffer plus a cursor they advance, and a `base`
//! offset locating the buffer within the file so errors report absolute
//! file positions.

use crate::EtraceError;

/// Appends `value` as unsigned LEB128.
pub fn put_uleb(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `value` as signed LEB128 (zigzag-free, sign-extended form).
pub fn put_sleb(out: &mut Vec<u8>, mut value: i64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (value == 0 && sign_clear) || (value == -1 && !sign_clear) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 at `*cursor`, advancing it.
///
/// # Errors
///
/// [`EtraceError::Truncated`] if the buffer ends mid-value,
/// [`EtraceError::InvalidPacket`] if the encoding runs past 64 bits.
pub fn get_uleb(buf: &[u8], cursor: &mut usize, base: u64) -> Result<u64, EtraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*cursor) else {
            return Err(EtraceError::Truncated { offset: base + *cursor as u64 });
        };
        if shift >= 64 {
            return Err(EtraceError::InvalidPacket { value: byte, offset: base + *cursor as u64 });
        }
        *cursor += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads a signed LEB128 at `*cursor`, advancing it.
///
/// # Errors
///
/// As [`get_uleb`].
pub fn get_sleb(buf: &[u8], cursor: &mut usize, base: u64) -> Result<i64, EtraceError> {
    let mut value = 0i64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*cursor) else {
            return Err(EtraceError::Truncated { offset: base + *cursor as u64 });
        };
        if shift >= 64 {
            return Err(EtraceError::InvalidPacket { value: byte, offset: base + *cursor as u64 });
        }
        *cursor += 1;
        value |= i64::from(byte & 0x7f) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                value |= -1i64 << shift;
            }
            return Ok(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trip_across_widths() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            put_uleb(&mut buf, v);
            let mut cursor = 0;
            assert_eq!(get_uleb(&buf, &mut cursor, 0).unwrap(), v);
            assert_eq!(cursor, buf.len());
        }
    }

    #[test]
    fn signed_round_trip_across_signs() {
        let values = [0i64, 1, -1, 63, 64, -64, -65, i64::MAX, i64::MIN, -123_456_789];
        for &v in &values {
            let mut buf = Vec::new();
            put_sleb(&mut buf, v);
            let mut cursor = 0;
            assert_eq!(get_sleb(&buf, &mut cursor, 0).unwrap(), v, "{v}");
            assert_eq!(cursor, buf.len());
        }
    }

    #[test]
    fn small_deltas_cost_one_byte() {
        for v in -64i64..=63 {
            let mut buf = Vec::new();
            put_sleb(&mut buf, v);
            assert_eq!(buf.len(), 1, "{v}");
        }
    }

    #[test]
    fn truncated_input_reports_absolute_offset() {
        let mut buf = Vec::new();
        put_uleb(&mut buf, u64::MAX);
        buf.pop();
        let mut cursor = 0;
        match get_uleb(&buf, &mut cursor, 100) {
            Err(EtraceError::Truncated { offset }) => assert_eq!(offset, 100 + buf.len() as u64),
            other => panic!("want Truncated, got {other:?}"),
        }
    }

    #[test]
    fn overlong_encoding_is_invalid_not_looping() {
        let buf = [0x80u8; 12];
        let mut cursor = 0;
        assert!(matches!(get_uleb(&buf, &mut cursor, 0), Err(EtraceError::InvalidPacket { .. })));
    }
}
