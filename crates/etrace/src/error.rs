//! Decode and encode failures, every variant carrying the byte offset
//! where the stream went wrong so CLI diagnostics can point at it.

use std::fmt;
use std::io;

/// Why an E-Trace stream could not be encoded or decoded.
#[derive(Debug)]
pub enum EtraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `ETRC` magic.
    BadMagic {
        /// Byte offset of the failed magic check (always `0`).
        offset: u64,
    },
    /// The version byte names a format this build does not speak.
    UnsupportedVersion {
        /// The version byte found.
        version: u8,
        /// Byte offset of the version byte.
        offset: u64,
    },
    /// The stream ended in the middle of a structure.
    Truncated {
        /// Byte offset where input ran out.
        offset: u64,
    },
    /// A packet type byte or payload field holds an impossible value.
    InvalidPacket {
        /// The offending byte.
        value: u8,
        /// Byte offset of the offending byte.
        offset: u64,
    },
    /// The control stream did not begin with a SYNC packet, so the
    /// decoder has no initial program counter.
    MissingSync {
        /// Byte offset where SYNC was expected.
        offset: u64,
    },
    /// Execution reached a program counter the program table does not
    /// describe.
    UnknownPc {
        /// The unresolvable program counter.
        pc: u64,
        /// Byte offset of the control-stream cursor when it happened.
        offset: u64,
    },
    /// The program table is malformed (empty, unsorted, or duplicate
    /// program counters).
    InvalidProgram {
        /// What the validation found.
        detail: &'static str,
    },
    /// All items were reconstructed but encoded bytes remain.
    TrailingData {
        /// Byte offset of the first unconsumed byte.
        offset: u64,
    },
}

impl fmt::Display for EtraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtraceError::Io(e) => write!(f, "i/o error: {e}"),
            EtraceError::BadMagic { offset } => {
                write!(f, "not an e-trace file (bad magic) at byte {offset}")
            }
            EtraceError::UnsupportedVersion { version, offset } => {
                write!(f, "unsupported e-trace version {version} at byte {offset}")
            }
            EtraceError::Truncated { offset } => {
                write!(f, "truncated e-trace stream at byte {offset}")
            }
            EtraceError::InvalidPacket { value, offset } => {
                write!(f, "invalid e-trace packet byte {value:#04x} at byte {offset}")
            }
            EtraceError::MissingSync { offset } => {
                write!(f, "e-trace stream does not start with a sync packet at byte {offset}")
            }
            EtraceError::UnknownPc { pc, offset } => {
                write!(f, "pc {pc:#x} not in the program table at byte {offset}")
            }
            EtraceError::InvalidProgram { detail } => {
                write!(f, "invalid program table: {detail}")
            }
            EtraceError::TrailingData { offset } => {
                write!(f, "trailing bytes after the last instruction at byte {offset}")
            }
        }
    }
}

impl std::error::Error for EtraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EtraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for EtraceError {
    fn from(e: io::Error) -> EtraceError {
        EtraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_one_line_and_carry_offsets() {
        let cases: Vec<(EtraceError, &str)> = vec![
            (EtraceError::BadMagic { offset: 0 }, "byte 0"),
            (EtraceError::UnsupportedVersion { version: 9, offset: 4 }, "version 9"),
            (EtraceError::Truncated { offset: 77 }, "byte 77"),
            (EtraceError::InvalidPacket { value: 0xfe, offset: 12 }, "0xfe"),
            (EtraceError::MissingSync { offset: 30 }, "sync"),
            (EtraceError::UnknownPc { pc: 0x1000, offset: 5 }, "0x1000"),
            (EtraceError::InvalidProgram { detail: "empty" }, "empty"),
            (EtraceError::TrailingData { offset: 9 }, "byte 9"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} misses {needle:?}");
            assert_eq!(msg.lines().count(), 1, "multi-line: {msg:?}");
        }
    }
}
