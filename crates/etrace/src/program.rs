//! The static program image: per-instruction metadata the decoder walks
//! while consuming packets.
//!
//! Real E-Trace decoders obtain this from the traced ELF binary; here
//! the synthetic RISC-V workload generator builds it directly and the
//! writer embeds it in the `.etrace` file header, so every file is
//! self-contained.

use crate::varint::{get_sleb, get_uleb, put_sleb, put_uleb};
use crate::EtraceError;

/// Register-field value meaning "no register".
pub const RV_REG_NONE: u8 = 0xff;

/// What one static instruction does, as far as trace reconstruction
/// and downstream conversion care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// Integer ALU operation.
    Int,
    /// Integer multiply/divide (slow ALU).
    Mul,
    /// Floating-point operation.
    Fp,
    /// Memory load of `size` bytes.
    Load {
        /// Access width in bytes.
        size: u8,
    },
    /// Memory store of `size` bytes.
    Store {
        /// Access width in bytes.
        size: u8,
    },
    /// Conditional branch to a static target when taken.
    CondBranch {
        /// Taken-path target program counter.
        target: u64,
    },
    /// Unconditional direct jump (no link register written).
    Jump {
        /// Target program counter.
        target: u64,
    },
    /// Direct call: jumps to `target` and links the return address.
    Call {
        /// Target program counter.
        target: u64,
    },
    /// Indirect jump through a register (target only known at run
    /// time — the trace carries it in an ADDR packet).
    IndJump,
    /// Indirect call through a register, linking the return address.
    IndCall,
    /// Function return (an indirect jump through the return-address
    /// register).
    Ret,
}

impl MetaOp {
    /// Whether reconstruction needs an ADDR packet for this op.
    pub fn is_indirect(self) -> bool {
        matches!(self, MetaOp::IndJump | MetaOp::IndCall | MetaOp::Ret)
    }

    /// Whether this op accesses memory (and so consumes one
    /// memory-stream delta).
    pub fn is_memory(self) -> bool {
        matches!(self, MetaOp::Load { .. } | MetaOp::Store { .. })
    }
}

/// One instruction of the static program image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaInstr {
    /// Program counter.
    pub pc: u64,
    /// Encoded length in bytes (4, or 2 for a compressed instruction).
    pub size: u8,
    /// Operation class and static operands.
    pub op: MetaOp,
    /// Destination register, or [`RV_REG_NONE`].
    pub rd: u8,
    /// First source register, or [`RV_REG_NONE`].
    pub rs1: u8,
    /// Second source register, or [`RV_REG_NONE`].
    pub rs2: u8,
}

impl MetaInstr {
    /// Program counter of the next sequential instruction.
    pub fn fallthrough(&self) -> u64 {
        self.pc + u64::from(self.size)
    }
}

/// The instruction-metadata table: every pc execution may visit, sorted
/// ascending and unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<MetaInstr>,
}

impl Program {
    /// Builds a program from instructions in any order.
    ///
    /// # Errors
    ///
    /// [`EtraceError::InvalidProgram`] if the table is empty, holds a
    /// duplicate pc, or an instruction size is not 2 or 4.
    pub fn new(mut instrs: Vec<MetaInstr>) -> Result<Program, EtraceError> {
        if instrs.is_empty() {
            return Err(EtraceError::InvalidProgram { detail: "empty instruction table" });
        }
        instrs.sort_by_key(|i| i.pc);
        for pair in instrs.windows(2) {
            if pair[0].pc == pair[1].pc {
                return Err(EtraceError::InvalidProgram { detail: "duplicate program counter" });
            }
        }
        if instrs.iter().any(|i| i.size != 2 && i.size != 4) {
            return Err(EtraceError::InvalidProgram { detail: "instruction size must be 2 or 4" });
        }
        Ok(Program { instrs })
    }

    /// Number of instructions in the table.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the table is empty (never true for a constructed
    /// program; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions, ascending by pc.
    pub fn instrs(&self) -> &[MetaInstr] {
        &self.instrs
    }

    /// Looks up `pc`, exact match only.
    pub fn lookup(&self, pc: u64) -> Option<&MetaInstr> {
        self.instrs.binary_search_by_key(&pc, |i| i.pc).ok().map(|idx| &self.instrs[idx])
    }

    /// Looks up `pc` with a caller-held position hint. Sequential and
    /// short-jump walks hit the hint or its successor and skip the
    /// binary search; the hint is updated to the found index.
    pub fn lookup_cached(&self, hint: &mut usize, pc: u64) -> Option<&MetaInstr> {
        if let Some(i) = self.instrs.get(*hint) {
            if i.pc == pc {
                return Some(i);
            }
        }
        if let Some(i) = self.instrs.get(*hint + 1) {
            if i.pc == pc {
                *hint += 1;
                return Some(i);
            }
        }
        let idx = self.instrs.binary_search_by_key(&pc, |i| i.pc).ok()?;
        *hint = idx;
        Some(&self.instrs[idx])
    }

    /// Serializes the table: count, then per instruction the pc delta
    /// to its predecessor, size, op tag, op payload (branch targets as
    /// signed deltas from the instruction's own pc), and the three
    /// register fields.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_uleb(out, self.instrs.len() as u64);
        let mut prev_pc = 0u64;
        for instr in &self.instrs {
            put_uleb(out, instr.pc - prev_pc);
            prev_pc = instr.pc;
            out.push(instr.size);
            let (tag, target, mem_size) = match instr.op {
                MetaOp::Int => (0u8, None, None),
                MetaOp::Mul => (1, None, None),
                MetaOp::Fp => (2, None, None),
                MetaOp::Load { size } => (3, None, Some(size)),
                MetaOp::Store { size } => (4, None, Some(size)),
                MetaOp::CondBranch { target } => (5, Some(target), None),
                MetaOp::Jump { target } => (6, Some(target), None),
                MetaOp::Call { target } => (7, Some(target), None),
                MetaOp::IndJump => (8, None, None),
                MetaOp::IndCall => (9, None, None),
                MetaOp::Ret => (10, None, None),
            };
            out.push(tag);
            if let Some(target) = target {
                put_sleb(out, target.wrapping_sub(instr.pc) as i64);
            }
            if let Some(size) = mem_size {
                out.push(size);
            }
            out.push(instr.rd);
            out.push(instr.rs1);
            out.push(instr.rs2);
        }
    }

    /// Decodes a table serialized by [`encode`](Program::encode),
    /// advancing `cursor`. `base` locates `buf` in the file for error
    /// offsets.
    pub fn decode(buf: &[u8], cursor: &mut usize, base: u64) -> Result<Program, EtraceError> {
        let take_byte = |cursor: &mut usize| -> Result<u8, EtraceError> {
            let Some(&byte) = buf.get(*cursor) else {
                return Err(EtraceError::Truncated { offset: base + *cursor as u64 });
            };
            *cursor += 1;
            Ok(byte)
        };
        let count = get_uleb(buf, cursor, base)?;
        let mut instrs = Vec::with_capacity(count.min(1 << 20) as usize);
        let mut pc = 0u64;
        for _ in 0..count {
            pc = pc.wrapping_add(get_uleb(buf, cursor, base)?);
            let size = take_byte(cursor)?;
            let tag_offset = base + *cursor as u64;
            let tag = take_byte(cursor)?;
            let op = match tag {
                0 => MetaOp::Int,
                1 => MetaOp::Mul,
                2 => MetaOp::Fp,
                3 => MetaOp::Load { size: take_byte(cursor)? },
                4 => MetaOp::Store { size: take_byte(cursor)? },
                5..=7 => {
                    let target = pc.wrapping_add(get_sleb(buf, cursor, base)? as u64);
                    match tag {
                        5 => MetaOp::CondBranch { target },
                        6 => MetaOp::Jump { target },
                        _ => MetaOp::Call { target },
                    }
                }
                8 => MetaOp::IndJump,
                9 => MetaOp::IndCall,
                10 => MetaOp::Ret,
                value => return Err(EtraceError::InvalidPacket { value, offset: tag_offset }),
            };
            let rd = take_byte(cursor)?;
            let rs1 = take_byte(cursor)?;
            let rs2 = take_byte(cursor)?;
            instrs.push(MetaInstr { pc, size, op, rd, rs1, rs2 });
        }
        Program::new(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program::new(vec![
            MetaInstr { pc: 0x1000, size: 4, op: MetaOp::Int, rd: 5, rs1: 6, rs2: 7 },
            MetaInstr {
                pc: 0x1004,
                size: 2,
                op: MetaOp::Load { size: 8 },
                rd: 8,
                rs1: 9,
                rs2: RV_REG_NONE,
            },
            MetaInstr {
                pc: 0x1006,
                size: 4,
                op: MetaOp::CondBranch { target: 0x1000 },
                rd: RV_REG_NONE,
                rs1: 5,
                rs2: 8,
            },
            MetaInstr {
                pc: 0x100a,
                size: 4,
                op: MetaOp::Ret,
                rd: RV_REG_NONE,
                rs1: 1,
                rs2: RV_REG_NONE,
            },
        ])
        .unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let program = sample();
        let mut buf = Vec::new();
        program.encode(&mut buf);
        let mut cursor = 0;
        let back = Program::decode(&buf, &mut cursor, 0).unwrap();
        assert_eq!(back, program);
        assert_eq!(cursor, buf.len());
    }

    #[test]
    fn validation_rejects_bad_tables() {
        assert!(matches!(Program::new(vec![]), Err(EtraceError::InvalidProgram { .. })));
        let dup = vec![
            MetaInstr { pc: 4, size: 4, op: MetaOp::Int, rd: 0, rs1: 0, rs2: 0 },
            MetaInstr { pc: 4, size: 4, op: MetaOp::Int, rd: 0, rs1: 0, rs2: 0 },
        ];
        assert!(matches!(Program::new(dup), Err(EtraceError::InvalidProgram { .. })));
        let bad_size = vec![MetaInstr { pc: 4, size: 3, op: MetaOp::Int, rd: 0, rs1: 0, rs2: 0 }];
        assert!(matches!(Program::new(bad_size), Err(EtraceError::InvalidProgram { .. })));
    }

    #[test]
    fn cached_lookup_matches_binary_search() {
        let program = sample();
        let mut hint = 0;
        // Sequential walk hits the hint path.
        assert_eq!(program.lookup_cached(&mut hint, 0x1000).unwrap().pc, 0x1000);
        assert_eq!(program.lookup_cached(&mut hint, 0x1004).unwrap().pc, 0x1004);
        assert_eq!(program.lookup_cached(&mut hint, 0x1006).unwrap().pc, 0x1006);
        // Backward jump falls back to binary search.
        assert_eq!(program.lookup_cached(&mut hint, 0x1000).unwrap().pc, 0x1000);
        assert!(program.lookup_cached(&mut hint, 0x2000).is_none());
        assert!(program.lookup(0x1005).is_none());
    }

    #[test]
    fn truncated_tables_error_with_offsets() {
        let program = sample();
        let mut buf = Vec::new();
        program.encode(&mut buf);
        for cut in 1..buf.len() {
            let mut cursor = 0;
            let result = Program::decode(&buf[..cut], &mut cursor, 0);
            assert!(result.is_err(), "prefix of {cut} bytes decoded");
        }
    }
}
