//! Memory hierarchy substrate for the ChampSim-class core model.
//!
//! Provides the set-associative caches, the four-level hierarchy
//! (L1I/L1D/L2/LLC + DRAM) and the data prefetchers the paper's
//! evaluation configures: an ip-stride prefetcher at the L1D and a
//! next-line prefetcher at the L2, mimicking Ice Lake-style prefetching
//! (§4).
//!
//! The model is latency-based: a demand access walks down the hierarchy,
//! accumulating per-level latencies, and fills every level on the way
//! back. Each cache tracks demand accesses/misses (for the MPKI columns
//! of Table 2) and prefetch usefulness.
//!
//! # Data flow
//!
//! ```text
//!   sim ──► Hierarchy::access_{code,data} ──► L1 ──► L2 ──► LLC ──► DRAM
//!                      │                      (fills on the way back)
//!                      ▼
//!            latency + CacheStats ──► telemetry (memsys.*)
//! ```
//!
//! # Example
//!
//! ```
//! use memsys::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::iiswc_main());
//! let cold = mem.access_data(0x400, 0x10000, false);
//! let warm = mem.access_data(0x400, 0x10000, false);
//! assert!(cold > warm, "second access hits in L1D");
//! ```

pub mod tlb;

mod cache;
mod hierarchy;
mod prefetch;

pub use cache::{AccessKind, Cache, CacheConfig, CacheStats, ReplacementPolicy, CACHELINE_BYTES};
pub use hierarchy::{Hierarchy, HierarchyConfig};
pub use prefetch::{DataPrefetcher, IpStridePrefetcher, NextLinePrefetcher, NoPrefetcher};
pub use tlb::{TranslationConfig, TranslationHierarchy};
