use crate::cache::{AccessKind, Cache, CacheConfig, ReplacementPolicy};
use crate::prefetch::{DataPrefetcher, IpStridePrefetcher, NextLinePrefetcher};
use crate::tlb::{TranslationConfig, TranslationHierarchy};

/// Configuration of the four-level hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Attach the paper's ip-stride prefetcher at the L1D.
    pub l1d_ip_stride: bool,
    /// Attach the paper's next-line prefetcher at the L2.
    pub l2_next_line: bool,
    /// Optional address translation (ITLB/DTLB/STLB + page walks).
    /// The paper's §4 setup does not discuss TLBs, so both presets leave
    /// this `None`; enable it for translation ablations.
    pub translation: Option<TranslationConfig>,
}

impl HierarchyConfig {
    /// The paper's §4 configuration: 32KB L1s, 1MB L2, 8MB LLC,
    /// ip-stride at L1D, next-line at L2 (Ice Lake-style).
    pub fn iiswc_main() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::with_size_kib(32, 8, 1),
            l1d: CacheConfig::with_size_kib(48, 12, 2),
            l2: CacheConfig::with_size_kib(1024, 16, 10),
            llc: CacheConfig::with_size_kib(8 * 1024, 16, 30),
            dram_latency: 200,
            l1d_ip_stride: true,
            l2_next_line: true,
            translation: None,
        }
    }

    /// The IPC-1 contest configuration: same geometry, no data
    /// prefetchers (the contest varied the *instruction* prefetcher).
    pub fn ipc1() -> HierarchyConfig {
        HierarchyConfig {
            l1d_ip_stride: false,
            l2_next_line: false,
            ..HierarchyConfig::iiswc_main()
        }
    }

    /// Enables Ice Lake-flavoured address translation (ablations).
    #[must_use]
    pub fn with_translation(mut self) -> HierarchyConfig {
        self.translation = Some(TranslationConfig::icelake());
        self
    }

    /// Sets a replacement policy on every level (ablations).
    #[must_use]
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> HierarchyConfig {
        self.l1i.replacement = policy;
        self.l1d.replacement = policy;
        self.l2.replacement = policy;
        self.llc.replacement = policy;
        self
    }
}

/// One of the stock data prefetchers, statically dispatched.
///
/// The hierarchy's hot path runs `on_access` on every demand access;
/// matching on this enum instead of calling through
/// `Box<dyn DataPrefetcher>` lets the compiler inline the (tiny)
/// prefetcher bodies into the access path.
#[derive(Debug, Clone)]
enum AttachedPrefetcher {
    None,
    NextLine(NextLinePrefetcher),
    IpStride(IpStridePrefetcher),
}

impl AttachedPrefetcher {
    #[inline]
    fn on_access(&mut self, pc: u64, address: u64, hit: bool, out: &mut Vec<u64>) {
        match self {
            AttachedPrefetcher::None => {}
            AttachedPrefetcher::NextLine(p) => p.on_access(pc, address, hit, out),
            AttachedPrefetcher::IpStride(p) => p.on_access(pc, address, hit, out),
        }
    }

    #[inline]
    fn is_none(&self) -> bool {
        matches!(self, AttachedPrefetcher::None)
    }
}

/// The L1I/L1D/L2/LLC + DRAM hierarchy.
///
/// Demand accesses walk down the levels, accumulate latency, and fill
/// upward. Prefetches triggered by the attached data prefetchers (and by
/// the instruction-prefetch entry point) fill without charging demand
/// statistics.
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram_latency: u64,
    l1d_prefetcher: AttachedPrefetcher,
    l2_prefetcher: AttachedPrefetcher,
    /// Reused across accesses so prefetcher proposals never allocate in
    /// steady state. Never used re-entrantly: the L2 prefetcher drains it
    /// inside `below_l1` before the L1D prefetcher runs.
    pf_buf: Vec<u64>,
    translation: Option<TranslationHierarchy>,
}

impl Hierarchy {
    /// Builds a hierarchy from `config`.
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        let l1d_prefetcher = if config.l1d_ip_stride {
            AttachedPrefetcher::IpStride(IpStridePrefetcher::default_l1d())
        } else {
            AttachedPrefetcher::None
        };
        let l2_prefetcher = if config.l2_next_line {
            AttachedPrefetcher::NextLine(NextLinePrefetcher::new())
        } else {
            AttachedPrefetcher::None
        };
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            dram_latency: config.dram_latency,
            l1d_prefetcher,
            l2_prefetcher,
            pf_buf: Vec::new(),
            translation: config.translation.map(TranslationHierarchy::new),
        }
    }

    /// The translation hierarchy, when enabled.
    pub fn translation(&self) -> Option<&TranslationHierarchy> {
        self.translation.as_ref()
    }

    /// The instruction cache (for statistics).
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache (for statistics).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 (for statistics).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The last-level cache (for statistics).
    pub fn llc(&self) -> &Cache {
        &self.llc
    }

    /// Resets all statistics (after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
    }

    /// Registers every level's statistics under `memsys.{level}.*`.
    pub fn export_telemetry(&self, registry: &mut telemetry::Registry) {
        self.l1i.stats().export("l1i", registry);
        self.l1d.stats().export("l1d", registry);
        self.l2.stats().export("l2", registry);
        self.llc.stats().export("llc", registry);
    }

    /// Fetches the instruction line containing `address`; returns the
    /// access latency in cycles.
    pub fn access_instruction(&mut self, address: u64) -> u64 {
        let mut latency = self.l1i.config().latency;
        if let Some(t) = &mut self.translation {
            latency += t.translate_instruction(address);
        }
        if !self.l1i.probe(address, AccessKind::InstructionFetch) {
            latency += self.below_l1(address, AccessKind::InstructionFetch);
            self.l1i.fill(address, AccessKind::InstructionFetch);
        }
        latency
    }

    /// Performs a data access from instruction `pc`; returns latency.
    ///
    /// Stores are write-allocate and complete at L1 latency from the
    /// core's perspective once the line is present.
    pub fn access_data(&mut self, pc: u64, address: u64, is_store: bool) -> u64 {
        let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
        let mut latency = self.l1d.config().latency;
        if let Some(t) = &mut self.translation {
            latency += t.translate_data(address);
        }
        let hit = self.l1d.probe(address, kind);
        if !hit {
            latency += self.below_l1(address, kind);
            self.l1d.fill(address, kind);
        }
        if !self.l1d_prefetcher.is_none() {
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            self.l1d_prefetcher.on_access(pc, address, hit, &mut buf);
            for &pf in &buf {
                self.prefetch_into_l1d(pf);
            }
            self.pf_buf = buf;
        }
        latency
    }

    /// Prefetches the instruction line containing `address` into the L1I
    /// (entry point for the instruction prefetchers of the IPC-1 study).
    ///
    /// Returns the fill latency: the number of cycles until the line is
    /// actually usable. A fetch arriving earlier sees a *late prefetch*
    /// and stalls for the remainder — the timeliness dimension the IPC-1
    /// designs compete on. Returns 0 when the line was already present.
    pub fn prefetch_instruction(&mut self, address: u64) -> u64 {
        if self.l1i.contains(address) {
            return 0;
        }
        // Find the line's current home to price the fill.
        let latency = if self.l2.contains(address) {
            self.l2.config().latency
        } else if self.llc.contains(address) {
            self.l2.config().latency + self.llc.config().latency
        } else {
            self.l2.config().latency + self.llc.config().latency + self.dram_latency
        };
        self.walk_fill_below_l1(address);
        self.l1i.fill(address, AccessKind::Prefetch);
        latency
    }

    /// `true` if the instruction line is already in the L1I (used by
    /// prefetchers to filter redundant requests).
    pub fn instruction_line_present(&self, address: u64) -> bool {
        self.l1i.contains(address)
    }

    fn prefetch_into_l1d(&mut self, address: u64) {
        if self.l1d.contains(address) {
            return;
        }
        self.walk_fill_below_l1(address);
        self.l1d.fill(address, AccessKind::Prefetch);
    }

    /// Brings a line into L2 (and LLC) without charging demand stats.
    fn walk_fill_below_l1(&mut self, address: u64) {
        if !self.l2.probe(address, AccessKind::Prefetch) {
            if !self.llc.probe(address, AccessKind::Prefetch) {
                self.llc.fill(address, AccessKind::Prefetch);
            }
            self.l2.fill(address, AccessKind::Prefetch);
        }
    }

    /// Demand walk below the L1s; returns the additional latency and
    /// fills L2/LLC on the way back.
    fn below_l1(&mut self, address: u64, kind: AccessKind) -> u64 {
        let mut latency = self.l2.config().latency;
        let l2_hit = self.l2.probe(address, kind);
        if !l2_hit {
            latency += self.llc.config().latency;
            if !self.llc.probe(address, kind) {
                latency += self.dram_latency;
                self.llc.fill(address, kind);
            }
            self.l2.fill(address, kind);
        }
        if !self.l2_prefetcher.is_none() {
            let mut buf = std::mem::take(&mut self.pf_buf);
            buf.clear();
            self.l2_prefetcher.on_access(0, address, l2_hit, &mut buf);
            for &pf in &buf {
                if !self.l2.contains(pf) {
                    if !self.llc.probe(pf, AccessKind::Prefetch) {
                        self.llc.fill(pf, AccessKind::Prefetch);
                    }
                    self.l2.fill(pf, AccessKind::Prefetch);
                }
            }
            self.pf_buf = buf;
        }
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_prefetch() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1d_ip_stride: false,
            l2_next_line: false,
            ..HierarchyConfig::iiswc_main()
        })
    }

    #[test]
    fn latency_decreases_with_locality() {
        let mut mem = no_prefetch();
        let cold = mem.access_data(0x400, 0x123456, false);
        let warm = mem.access_data(0x400, 0x123456, false);
        assert!(cold >= 200, "cold access reaches DRAM: {cold}");
        assert_eq!(warm, mem.l1d().config().latency);
    }

    #[test]
    fn l2_hit_is_faster_than_llc_hit() {
        let mut mem = no_prefetch();
        mem.access_data(0, 0x9000, false); // fill all levels
                                           // Evict from L1D only by touching many conflicting lines.
        let sets = mem.l1d().config().sets as u64;
        let ways = mem.l1d().config().ways as u64;
        for i in 1..=ways + 2 {
            mem.access_data(0, 0x9000 + i * sets * 64, false);
        }
        let after = mem.access_data(0, 0x9000, false);
        assert!(after > mem.l1d().config().latency);
        assert!(after <= mem.l1d().config().latency + mem.l2().config().latency);
    }

    #[test]
    fn instruction_and_data_paths_are_separate() {
        let mut mem = no_prefetch();
        mem.access_instruction(0x1000);
        assert_eq!(mem.l1i().stats().demand_accesses, 1);
        assert_eq!(mem.l1d().stats().demand_accesses, 0);
        mem.access_data(0, 0x1000, false);
        // Shares the L2 line brought by the instruction fetch.
        assert_eq!(mem.l2().stats().demand_misses, 1);
    }

    #[test]
    fn instruction_prefetch_hides_demand_miss() {
        let mut mem = no_prefetch();
        mem.prefetch_instruction(0x4000);
        assert_eq!(mem.l1i().stats().demand_misses, 0);
        let lat = mem.access_instruction(0x4000);
        assert_eq!(lat, mem.l1i().config().latency);
        assert_eq!(mem.l1i().stats().useful_prefetches, 1);
    }

    #[test]
    fn l1d_ip_stride_prefetcher_reduces_misses_on_streams() {
        let mut with_pf = Hierarchy::new(HierarchyConfig::iiswc_main());
        let mut without = no_prefetch();
        for i in 0..2000u64 {
            let addr = 0x10_0000 + i * 64;
            with_pf.access_data(0x400, addr, false);
            without.access_data(0x400, addr, false);
        }
        let pf_misses = with_pf.l1d().stats().demand_misses;
        let base_misses = without.l1d().stats().demand_misses;
        assert!(
            pf_misses < base_misses / 2,
            "stride prefetching should cut stream misses: {pf_misses} vs {base_misses}"
        );
    }

    #[test]
    fn telemetry_export_covers_every_level() {
        let mut mem = no_prefetch();
        mem.access_data(0, 0x1000, false);
        let mut registry = telemetry::Registry::new();
        mem.export_telemetry(&mut registry);
        assert_eq!(registry.counter_value("memsys.l1d.demand_accesses"), 1);
        assert_eq!(registry.counter_value("memsys.llc.demand_misses"), 1);
        // 6 metrics per level × 4 levels.
        assert_eq!(registry.len(), 24);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut mem = no_prefetch();
        mem.access_data(0, 0x1000, true);
        mem.reset_stats();
        assert_eq!(mem.l1d().stats().demand_accesses, 0);
        assert_eq!(mem.llc().stats().demand_misses, 0);
    }
}
