use crate::cache::CACHELINE_BYTES;

/// A data prefetcher attached to one cache level.
///
/// On every demand access the owning level calls
/// [`on_access`](DataPrefetcher::on_access); addresses pushed into `out`
/// are prefetched into that level (through the levels below it).
pub trait DataPrefetcher {
    /// Observes a demand access and appends proposed prefetch addresses
    /// to `out`.
    ///
    /// `pc` is the accessing instruction's address (0 when unknown, e.g.
    /// for L2 accesses), `address` the byte address accessed, `hit`
    /// whether the access hit this level. The caller clears and reuses
    /// `out` across accesses, so this path allocates only until the
    /// buffer reaches the prefetcher's degree.
    fn on_access(&mut self, pc: u64, address: u64, hit: bool, out: &mut Vec<u64>);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The null prefetcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl DataPrefetcher for NoPrefetcher {
    fn on_access(&mut self, _pc: u64, _address: u64, _hit: bool, _out: &mut Vec<u64>) {}

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Next-line prefetcher: on every access, prefetch the following
/// cacheline. The paper attaches this to the L2 (§4).
#[derive(Debug, Clone, Copy, Default)]
pub struct NextLinePrefetcher {
    /// How many sequential lines ahead to prefetch (1 = classic).
    pub degree: u32,
}

impl NextLinePrefetcher {
    /// Classic single-line-ahead prefetcher.
    pub fn new() -> NextLinePrefetcher {
        NextLinePrefetcher { degree: 1 }
    }
}

impl DataPrefetcher for NextLinePrefetcher {
    fn on_access(&mut self, _pc: u64, address: u64, _hit: bool, out: &mut Vec<u64>) {
        let degree = self.degree.max(1) as u64;
        out.extend((1..=degree).map(|i| (address & !(CACHELINE_BYTES - 1)) + i * CACHELINE_BYTES));
    }

    fn name(&self) -> &'static str {
        "next-line"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc_tag: u64,
    last_address: u64,
    stride: i64,
    confidence: u8,
}

/// IP-stride prefetcher: learns a per-PC stride and prefetches ahead once
/// confident. The paper attaches this to the L1D (§4).
#[derive(Debug, Clone)]
pub struct IpStridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
}

impl IpStridePrefetcher {
    /// A prefetcher with `entries` tracking slots issuing `degree`
    /// prefetches ahead.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize, degree: u32) -> IpStridePrefetcher {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        IpStridePrefetcher { table: vec![StrideEntry::default(); entries], degree }
    }

    /// ChampSim-like default: 256 trackers, degree 2.
    pub fn default_l1d() -> IpStridePrefetcher {
        IpStridePrefetcher::new(256, 2)
    }
}

impl DataPrefetcher for IpStridePrefetcher {
    fn on_access(&mut self, pc: u64, address: u64, _hit: bool, out: &mut Vec<u64>) {
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let e = &mut self.table[idx];
        if e.pc_tag == pc {
            let stride = address.wrapping_sub(e.last_address) as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.confidence = e.confidence.saturating_sub(1);
                if e.confidence == 0 {
                    e.stride = stride;
                }
            }
            if e.confidence >= 2 && e.stride != 0 {
                for i in 1..=self.degree as i64 {
                    let target = address.wrapping_add((e.stride * i) as u64);
                    out.push(target);
                }
            }
            e.last_address = address;
        } else {
            *e = StrideEntry { pc_tag: pc, last_address: address, stride: 0, confidence: 0 };
        }
    }

    fn name(&self) -> &'static str {
        "ip-stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(p: &mut dyn DataPrefetcher, pc: u64, address: u64, hit: bool) -> Vec<u64> {
        let mut out = Vec::new();
        p.on_access(pc, address, hit, &mut out);
        out
    }

    #[test]
    fn next_line_prefetches_following_lines() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(collect(&mut p, 0, 0x1004, true), vec![0x1040]);
        let mut deep = NextLinePrefetcher { degree: 3 };
        assert_eq!(collect(&mut deep, 0, 0x1000, false), vec![0x1040, 0x1080, 0x10C0]);
    }

    #[test]
    fn ip_stride_learns_constant_stride() {
        let mut p = IpStridePrefetcher::new(64, 2);
        let mut issued = Vec::new();
        for i in 0..8u64 {
            issued = collect(&mut p, 0x400, 0x1000 + i * 256, false);
        }
        // After confidence builds, prefetches run 2 strides ahead.
        assert_eq!(issued, vec![0x1000 + 8 * 256, 0x1000 + 9 * 256]);
    }

    #[test]
    fn ip_stride_ignores_random_pattern() {
        let mut p = IpStridePrefetcher::new(64, 2);
        let addrs = [0x1000u64, 0x5000, 0x2000, 0x9000, 0x3000, 0x7777];
        let mut total = 0;
        for &a in &addrs {
            total += collect(&mut p, 0x400, a, false).len();
        }
        assert_eq!(total, 0, "no stride, no prefetch");
    }

    #[test]
    fn ip_stride_separates_pcs() {
        let mut p = IpStridePrefetcher::new(64, 1);
        for i in 0..6u64 {
            collect(&mut p, 0x400, 0x1000 + i * 64, false);
            collect(&mut p, 0x404, 0x8000 + i * 128, false);
        }
        let a = collect(&mut p, 0x400, 0x1000 + 6 * 64, false);
        let b = collect(&mut p, 0x404, 0x8000 + 6 * 128, false);
        assert_eq!(a, vec![0x1000 + 7 * 64]);
        assert_eq!(b, vec![0x8000 + 7 * 128]);
    }

    #[test]
    fn reused_buffer_is_appended_not_replaced() {
        let mut p = NextLinePrefetcher::new();
        let mut out = vec![0xdead];
        p.on_access(0, 0x1000, false, &mut out);
        assert_eq!(out, vec![0xdead, 0x1040], "on_access must append, never clear");
    }

    #[test]
    fn no_prefetcher_is_silent() {
        assert!(collect(&mut NoPrefetcher, 1, 2, false).is_empty());
        assert_eq!(NoPrefetcher.name(), "none");
    }
}
