//! Address-translation modeling: ITLB, DTLB, STLB and page walks.
//!
//! ChampSim models two-level TLBs in front of the caches; the paper's
//! configuration does not discuss them, so the core presets leave
//! translation disabled — but the substrate is here for ablations and
//! for front-end studies in the spirit of the CBP-5 traces the paper
//! mentions (iTLB behaviour was one of their few measurable metrics).

/// Base-2 log of the page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;

/// Geometry and timing of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries (must divide into power-of-two sets).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Added latency on a hit at this level, in cycles.
    pub latency: u64,
}

/// A set-associative TLB with LRU replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    sets: Vec<Vec<(u64, u64)>>, // (page tag, lru)
    ways: usize,
    set_mask: u64,
    tick: u64,
    lookups: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into power-of-two sets.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.entries > 0 && config.ways > 0, "TLB dimensions must be positive");
        assert!(config.entries.is_multiple_of(config.ways), "entries must divide into ways");
        let sets = config.entries / config.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            sets: vec![Vec::with_capacity(config.ways); sets],
            ways: config.ways,
            set_mask: sets as u64 - 1,
            tick: 0,
            lookups: 0,
            misses: 0,
        }
    }

    fn set_of(&self, page: u64) -> usize {
        (page & self.set_mask) as usize
    }

    /// Probes for the page containing `vaddr`; refreshes LRU on a hit.
    pub fn probe(&mut self, vaddr: u64) -> bool {
        self.lookups += 1;
        self.tick += 1;
        let page = vaddr >> PAGE_SHIFT;
        let tick = self.tick;
        let set = self.set_of(page);
        for e in &mut self.sets[set] {
            if e.0 == page {
                e.1 = tick;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Installs the page containing `vaddr`.
    pub fn fill(&mut self, vaddr: u64) {
        self.tick += 1;
        let page = vaddr >> PAGE_SHIFT;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(page);
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.0 == page) {
            e.1 = tick;
            return;
        }
        if set.len() < ways {
            set.push((page, tick));
        } else {
            let victim = set.iter_mut().min_by_key(|e| e.1).expect("full set is non-empty");
            *victim = (page, tick);
        }
    }

    /// Lookups so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Configuration of the two-level translation hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// First-level instruction TLB.
    pub itlb: TlbConfig,
    /// First-level data TLB.
    pub dtlb: TlbConfig,
    /// Shared second-level TLB.
    pub stlb: TlbConfig,
    /// Page-walk latency on an STLB miss, in cycles.
    pub walk_latency: u64,
}

impl TranslationConfig {
    /// An Ice Lake-flavoured configuration matching the paper's §4
    /// microarchitectural era.
    pub fn icelake() -> TranslationConfig {
        TranslationConfig {
            itlb: TlbConfig { entries: 128, ways: 8, latency: 1 },
            dtlb: TlbConfig { entries: 64, ways: 4, latency: 1 },
            stlb: TlbConfig { entries: 2048, ways: 16, latency: 8 },
            walk_latency: 60,
        }
    }
}

/// ITLB + DTLB backed by a shared STLB and a fixed-latency page walker.
#[derive(Debug, Clone)]
pub struct TranslationHierarchy {
    itlb: Tlb,
    dtlb: Tlb,
    stlb: Tlb,
    walk_latency: u64,
    stlb_latency: u64,
}

impl TranslationHierarchy {
    /// Builds the hierarchy from `config`.
    pub fn new(config: TranslationConfig) -> TranslationHierarchy {
        TranslationHierarchy {
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            stlb: Tlb::new(config.stlb),
            walk_latency: config.walk_latency,
            stlb_latency: config.stlb.latency,
        }
    }

    /// Translates an instruction fetch; returns the added latency beyond
    /// a first-level hit (0 on an ITLB hit).
    pub fn translate_instruction(&mut self, vaddr: u64) -> u64 {
        Self::translate(&mut self.itlb, &mut self.stlb, self.stlb_latency, self.walk_latency, vaddr)
    }

    /// Translates a data access; returns the added latency beyond a
    /// first-level hit (0 on a DTLB hit).
    pub fn translate_data(&mut self, vaddr: u64) -> u64 {
        Self::translate(&mut self.dtlb, &mut self.stlb, self.stlb_latency, self.walk_latency, vaddr)
    }

    fn translate(l1: &mut Tlb, stlb: &mut Tlb, stlb_latency: u64, walk: u64, vaddr: u64) -> u64 {
        if l1.probe(vaddr) {
            return 0;
        }
        let penalty = if stlb.probe(vaddr) {
            stlb_latency
        } else {
            stlb.fill(vaddr);
            stlb_latency + walk
        };
        l1.fill(vaddr);
        penalty
    }

    /// The instruction TLB (for statistics).
    pub fn itlb(&self) -> &Tlb {
        &self.itlb
    }

    /// The data TLB (for statistics).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// The shared second-level TLB (for statistics).
    pub fn stlb(&self) -> &Tlb {
        &self.stlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TranslationHierarchy {
        TranslationHierarchy::new(TranslationConfig {
            itlb: TlbConfig { entries: 4, ways: 2, latency: 1 },
            dtlb: TlbConfig { entries: 4, ways: 2, latency: 1 },
            stlb: TlbConfig { entries: 16, ways: 4, latency: 5 },
            walk_latency: 50,
        })
    }

    #[test]
    fn cold_translation_walks_then_hits() {
        let mut t = tiny();
        assert_eq!(t.translate_data(0x1234), 55, "cold: STLB latency + walk");
        assert_eq!(t.translate_data(0x1FFF), 0, "same page: DTLB hit");
        assert_eq!(t.translate_data(0x2000), 55, "next page: cold again");
    }

    #[test]
    fn stlb_catches_dtlb_capacity_misses() {
        let mut t = tiny();
        // Touch 8 pages: DTLB (4 entries) thrashes, STLB (16) holds.
        for p in 0..8u64 {
            t.translate_data(p << PAGE_SHIFT);
        }
        let again = t.translate_data(0);
        assert_eq!(again, 5, "DTLB miss, STLB hit: {again}");
    }

    #[test]
    fn instruction_and_data_share_the_stlb() {
        let mut t = tiny();
        t.translate_instruction(0x8000);
        // The data side misses its DTLB but finds the page in the STLB.
        assert_eq!(t.translate_data(0x8000), 5);
        assert_eq!(t.stlb().misses(), 1);
    }

    #[test]
    fn statistics_accumulate() {
        let mut t = tiny();
        t.translate_data(0x0);
        t.translate_data(0x8);
        assert_eq!(t.dtlb().lookups(), 2);
        assert_eq!(t.dtlb().misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest_page() {
        let mut tlb = Tlb::new(TlbConfig { entries: 2, ways: 2, latency: 1 });
        tlb.fill(0 << PAGE_SHIFT);
        tlb.fill(1 << PAGE_SHIFT); // pages 0 and 1 map to... set 0 (1 set)
        assert!(tlb.probe(0));
        tlb.fill(2 << PAGE_SHIFT); // evicts page 1 (LRU)
        assert!(!tlb.probe(1 << PAGE_SHIFT));
        assert!(tlb.probe(2 << PAGE_SHIFT));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Tlb::new(TlbConfig { entries: 12, ways: 4, latency: 1 });
    }
}
