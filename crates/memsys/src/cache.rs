use std::fmt;

/// Cacheline size in bytes, fixed at 64 as in ChampSim and the paper.
pub const CACHELINE_BYTES: u64 = 64;

/// What kind of access is probing a cache (affects statistics only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (L1I demand).
    InstructionFetch,
    /// Data load.
    Load,
    /// Data store (write-allocate).
    Store,
    /// Prefetch (does not count as a demand access).
    Prefetch,
}

impl AccessKind {
    /// `true` for demand (non-prefetch) accesses.
    pub fn is_demand(self) -> bool {
        !matches!(self, AccessKind::Prefetch)
    }
}

/// Replacement policy of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
    /// Pseudo-random victim (deterministic xorshift).
    Random,
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles (charged on every probe of this level).
    pub latency: u64,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Convenience constructor from total size in KiB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into power-of-two sets.
    pub fn with_size_kib(size_kib: usize, ways: usize, latency: u64) -> CacheConfig {
        let lines = size_kib * 1024 / CACHELINE_BYTES as usize;
        assert!(lines.is_multiple_of(ways), "size must divide into ways");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig { sets, ways, latency, replacement: ReplacementPolicy::Lru }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * CACHELINE_BYTES
    }
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (fetch/load/store).
    pub demand_accesses: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Lines filled by prefetch.
    pub prefetch_fills: u64,
    /// Demand hits on lines brought in by prefetch (first touch).
    pub useful_prefetches: u64,
}

impl CacheStats {
    /// Demand miss ratio in `0..=1`.
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_misses as f64 / self.demand_accesses as f64
        }
    }

    /// Prefetch accuracy in `0..=1`: useful prefetches over prefetch
    /// fills (0 when nothing was prefetched).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / self.prefetch_fills as f64
        }
    }

    /// Registers this level's counters and ratios under
    /// `memsys.<level>.*`, where `level` is one of `l1i`, `l1d`, `l2`,
    /// `llc`.
    pub fn export(&self, level: &str, registry: &mut telemetry::Registry) {
        use telemetry::catalog;
        registry.counter_at(&catalog::MEMSYS_DEMAND_ACCESSES, level, self.demand_accesses);
        registry.counter_at(&catalog::MEMSYS_DEMAND_MISSES, level, self.demand_misses);
        registry.gauge_at(&catalog::MEMSYS_MISS_RATIO, level, 100.0 * self.miss_ratio());
        registry.counter_at(&catalog::MEMSYS_PREFETCH_FILLS, level, self.prefetch_fills);
        registry.counter_at(&catalog::MEMSYS_USEFUL_PREFETCHES, level, self.useful_prefetches);
        registry.gauge_at(
            &catalog::MEMSYS_PREFETCH_ACCURACY,
            level,
            100.0 * self.prefetch_accuracy(),
        );
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses {} misses {} ({}) pf-fills {} pf-useful {}",
            self.demand_accesses,
            self.demand_misses,
            telemetry::format::percent(self.miss_ratio()),
            self.prefetch_fills,
            self.useful_prefetches
        )
    }
}

/// RRPV value of an empty way (SRRIP's "distant" re-reference).
const META_INVALID: u8 = 3;
/// RRPV mask within a [`Cache::meta`] byte.
const META_RRPV: u8 = 0b011;
/// Prefetched-and-not-yet-demand-touched flag within a meta byte.
const META_PREFETCHED: u8 = 0b100;

/// A set-associative cache with pluggable replacement.
///
/// Addresses are byte addresses; the cache works on 64-byte lines.
///
/// Way state is kept struct-of-arrays so the hot probe path scans a
/// dense `u64` slice: each way packs `(tag << 1) | valid` into one word
/// (a 12-way set is 96 contiguous bytes), with LRU stamps and RRPV bits
/// in cold side arrays touched only on hits and fills.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets - 1`; the set index is `(line & set_mask) * ways`.
    set_mask: u64,
    /// Per way: `(tag << 1) | valid`.
    tags: Box<[u64]>,
    /// Per way: last-touch tick (LRU).
    stamps: Box<[u64]>,
    /// Per way: RRPV in bits 0-1, prefetched flag in bit 2.
    meta: Box<[u8]>,
    tick: u64,
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or any dimension is
    /// zero.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two() && config.sets > 0, "sets must be a power of two");
        assert!(config.ways > 0, "ways must be positive");
        let lines = config.sets * config.ways;
        Cache {
            config,
            set_mask: config.sets as u64 - 1,
            tags: vec![0u64; lines].into_boxed_slice(),
            stamps: vec![0u64; lines].into_boxed_slice(),
            meta: vec![META_INVALID; lines].into_boxed_slice(),
            tick: 0,
            rng: 0x853c_49e6_748f_ea9b,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_start(&self, tag: u64) -> usize {
        (tag & self.set_mask) as usize * self.config.ways
    }

    /// Branch-free scan for `packed` in the set at `start`; returns the
    /// matching way's line index. At most one way can match, so keeping
    /// the last match seen is equivalent to keeping the first.
    #[inline]
    fn find_way(&self, start: usize, packed: u64) -> Option<usize> {
        let mut found = usize::MAX;
        for (i, &w) in self.tags[start..start + self.config.ways].iter().enumerate() {
            if w == packed {
                found = start + i;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Probes for `address`; on a hit refreshes replacement state.
    /// Statistics are charged according to `kind`.
    pub fn probe(&mut self, address: u64, kind: AccessKind) -> bool {
        self.tick += 1;
        if kind.is_demand() {
            self.stats.demand_accesses += 1;
        }
        let tag = address / CACHELINE_BYTES;
        let start = self.set_start(tag);
        if let Some(i) = self.find_way(start, (tag << 1) | 1) {
            self.stamps[i] = self.tick;
            let meta = self.meta[i] & !META_RRPV;
            if kind.is_demand() && meta & META_PREFETCHED != 0 {
                self.meta[i] = 0;
                self.stats.useful_prefetches += 1;
            } else {
                self.meta[i] = meta;
            }
            return true;
        }
        if kind.is_demand() {
            self.stats.demand_misses += 1;
        }
        false
    }

    /// Installs the line containing `address`, evicting a victim if the
    /// set is full. Returns the evicted line's base address, if any.
    pub fn fill(&mut self, address: u64, kind: AccessKind) -> Option<u64> {
        self.tick += 1;
        if kind == AccessKind::Prefetch {
            self.stats.prefetch_fills += 1;
        }
        let tag = address / CACHELINE_BYTES;
        let start = self.set_start(tag);
        let end = start + self.config.ways;
        let tick = self.tick;

        // Already present (e.g. racing prefetch): refresh only.
        if let Some(i) = self.find_way(start, (tag << 1) | 1) {
            self.stamps[i] = tick;
            self.meta[i] &= !META_RRPV;
            return None;
        }
        // SRRIP long re-reference insertion; prefetch fills get no
        // distant-insertion bias (they share the demand RRPV).
        let fill_meta = 2 | if kind == AccessKind::Prefetch { META_PREFETCHED } else { 0 };
        // Invalid way available.
        if let Some(i) = (start..end).find(|&i| self.tags[i] & 1 == 0) {
            self.tags[i] = (tag << 1) | 1;
            self.stamps[i] = tick;
            self.meta[i] = fill_meta;
            return None;
        }
        // Pick a victim.
        let victim = match self.config.replacement {
            ReplacementPolicy::Lru => {
                let mut best = start;
                for i in start..end {
                    if self.stamps[i] < self.stamps[best] {
                        best = i;
                    }
                }
                best
            }
            ReplacementPolicy::Srrip => loop {
                if let Some(i) = (start..end).find(|&i| self.meta[i] & META_RRPV >= 3) {
                    break i;
                }
                for m in &mut self.meta[start..end] {
                    let aged = (*m & META_RRPV) + 1;
                    *m = (*m & !META_RRPV) | aged.min(3);
                }
            },
            ReplacementPolicy::Random => {
                let mut x = self.rng;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.rng = x;
                start + (x as usize) % (end - start)
            }
        };
        let evicted = (self.tags[victim] >> 1) * CACHELINE_BYTES;
        self.tags[victim] = (tag << 1) | 1;
        self.stamps[victim] = tick;
        self.meta[victim] = fill_meta;
        Some(evicted)
    }

    /// `true` if the line containing `address` is resident (no state
    /// changes, no statistics).
    pub fn contains(&self, address: u64) -> bool {
        let tag = address / CACHELINE_BYTES;
        self.find_way(self.set_start(tag), (tag << 1) | 1).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig { sets: 4, ways: 2, latency: 1, replacement: policy })
    }

    #[test]
    fn size_constructor_math() {
        let c = CacheConfig::with_size_kib(32, 8, 4);
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c.sets, 64);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small(ReplacementPolicy::Lru);
        assert!(!c.probe(0x1000, AccessKind::Load));
        c.fill(0x1000, AccessKind::Load);
        assert!(c.probe(0x1000, AccessKind::Load));
        assert!(c.probe(0x1038, AccessKind::Load), "same line");
        assert!(!c.probe(0x1040, AccessKind::Load), "next line");
        assert_eq!(c.stats().demand_accesses, 4);
        assert_eq!(c.stats().demand_misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small(ReplacementPolicy::Lru);
        // Set stride: 4 sets × 64B = 256B. These three collide in set 0.
        c.fill(0x0000, AccessKind::Load);
        c.fill(0x0100, AccessKind::Load);
        assert!(c.probe(0x0000, AccessKind::Load)); // refresh 0x0000
        let evicted = c.fill(0x0200, AccessKind::Load);
        assert_eq!(evicted, Some(0x0100));
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0100));
    }

    #[test]
    fn prefetch_usefulness_is_tracked() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, AccessKind::Prefetch);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.probe(0x1000, AccessKind::Load));
        assert_eq!(c.stats().useful_prefetches, 1);
        // Second demand hit does not double-count usefulness.
        assert!(c.probe(0x1000, AccessKind::Load));
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn prefetch_probe_is_not_demand() {
        let mut c = small(ReplacementPolicy::Lru);
        c.probe(0x1000, AccessKind::Prefetch);
        assert_eq!(c.stats().demand_accesses, 0);
        assert_eq!(c.stats().demand_misses, 0);
    }

    #[test]
    fn prefetch_probe_keeps_usefulness_pending() {
        // A prefetch probe touching a prefetched line must not consume
        // the first-demand-touch credit.
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, AccessKind::Prefetch);
        assert!(c.probe(0x1000, AccessKind::Prefetch));
        assert_eq!(c.stats().useful_prefetches, 0);
        assert!(c.probe(0x1000, AccessKind::Load));
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn srrip_and_random_fill_without_panic() {
        for policy in [ReplacementPolicy::Srrip, ReplacementPolicy::Random] {
            let mut c = small(policy);
            for i in 0..64u64 {
                c.fill(i * 0x100, AccessKind::Load);
                c.probe(i * 0x100, AccessKind::Load);
            }
            // Working set exceeds capacity; at most 8 lines survive.
            let live = (0..64u64).filter(|i| c.contains(i * 0x100)).count();
            assert!(live <= 8, "{policy:?}: {live}");
        }
    }

    #[test]
    fn duplicate_fill_does_not_duplicate() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, AccessKind::Load);
        assert_eq!(c.fill(0x1000, AccessKind::Load), None);
        // The other way must still be free.
        c.fill(0x1100, AccessKind::Load);
        assert!(c.contains(0x1000) && c.contains(0x1100));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(ReplacementPolicy::Lru);
        c.fill(0x1000, AccessKind::Load);
        c.probe(0x1000, AccessKind::Load);
        c.reset_stats();
        assert_eq!(c.stats().demand_accesses, 0);
        assert!(c.contains(0x1000));
    }
}
