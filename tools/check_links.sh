#!/usr/bin/env bash
# Fails on dead relative links in README.md and docs/*.md.
#
# Checks every markdown inline-link target `](...)`, skipping absolute
# URLs (http/https/mailto) and pure in-page anchors (#...). Fragments
# are stripped before the existence check, which is resolved relative
# to the file containing the link.
set -u
cd "$(dirname "$0")/.."

status=0
for file in README.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # One target per line; tolerate multiple links on a line.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*|'') continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "dead link in $file: ($target) -> $dir/$path" >&2
            status=1
        fi
    done < <(grep -o ']([^)]*)' "$file" | sed 's/^](//; s/)$//')
done

if [ "$status" -ne 0 ]; then
    echo "docs link check FAILED" >&2
else
    echo "docs link check passed"
fi
exit "$status"
